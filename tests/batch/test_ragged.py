"""The ragged-path identity gate: pack-tailed pipelines batched as one
masked 2D evaluation must match the per-row loop on every defined lane
and on every per-category counter, across the VLEN x LMUL x codegen
grid — including rows where the predicate keeps nothing and rows where
it keeps everything.

The suite is registry-driven: it runs exactly because
``get_spec("pack").ragged2d`` declares the masked recipe. If the
declaration is ever withdrawn the promotion assertions here fail
before any silent fallback ships.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.batch import RaggedBatch, pack2d, run_bucket
from repro.rvv.types import LMUL
from repro.svm.opspec import get_spec

from .conftest import make_rows, run_both

THRESH = 2**15


def pipe_pack(lz, data):
    """Bare pack: the minimal ragged shape."""
    flags = lz.p_lt(data, THRESH)
    out, _kept = lz.pack(data, flags)
    lz.free(flags)
    return out


def pipe_pack_filter(lz, data):
    """Range filter (two compares merged) feeding pack — the serve
    daemon's ``filter`` pipeline shape."""
    lt_hi = lz.p_lt(data, 3 * 2**14)
    ge_lo = lz.p_ge(data, 2**14)
    lz.p_mul(ge_lo, lt_hi)
    out, _kept = lz.pack(data, ge_lo)
    lz.free(ge_lo)
    lz.free(lt_hi)
    return out


def pipe_pack_future(lz, data):
    """Pack whose kept future feeds a later scalar operand: the
    per-row kept vector threads through the prefix-local p_add."""
    flags = lz.p_lt(data, THRESH)
    out, kept = lz.pack(data, flags)
    lz.p_add(out, kept)
    lz.free(flags)
    return out


def pipe_radix_split(lz, data):
    """One radix pass (split by bit 0, itself future-bearing) feeding
    a pack — the serve daemon's ``radix_pack`` pipeline shape."""
    flags = lz.get_flags(data, 0)
    part, _zeros = lz.split(data, flags)
    keep = lz.p_lt(part, THRESH)
    out, _kept = lz.pack(part, keep)
    lz.free(keep)
    lz.free(part)
    lz.free(flags)
    return out


#: name -> (pipeline, survivor-count oracle on the raw row)
RAGGED_PIPELINES = {
    "pack": (pipe_pack, lambda d: int((d < THRESH).sum())),
    "pack_filter": (pipe_pack_filter,
                    lambda d: int(((d >= 2**14) & (d < 3 * 2**14)).sum())),
    "pack_future": (pipe_pack_future, lambda d: int((d < THRESH).sum())),
    "radix_split": (pipe_radix_split, lambda d: int((d < THRESH).sum())),
}


def assert_ragged_equivalent(name, rows, **svm_kwargs):
    pipe, kept_of = RAGGED_PIPELINES[name]
    loop_outs, loop_counts, result, batch_counts = run_both(
        pipe, rows, **svm_kwargs)
    assert len(result) == len(rows)
    for i, (row, want, got) in enumerate(zip(rows, loop_outs, result)):
        kept = kept_of(row)
        assert result.lengths[i] == kept, f"row {i} kept count"
        assert np.array_equal(want[:kept], got[:kept]), f"row {i} diverged"
    assert loop_counts.by_category == batch_counts.by_category
    return result


def test_registry_declares_the_ragged_recipe():
    spec = get_spec("pack")
    assert spec.data_dependent and spec.ragged2d and not spec.batch2d


@pytest.mark.parametrize("codegen", ["ideal", "paper"])
@pytest.mark.parametrize("vlen", [128, 512])
@pytest.mark.parametrize("lmul", [LMUL.M1, LMUL.M4, LMUL.M8])
@pytest.mark.parametrize("name", sorted(RAGGED_PIPELINES))
def test_grid(name, vlen, lmul, codegen):
    rows = make_rows((300, 300, 300), seed=29)
    result = assert_ragged_equivalent(name, rows, vlen=vlen, lmul=lmul,
                                      mode="fast", codegen=codegen)
    assert {b.path for b in result.buckets} == {"ragged"}


@pytest.mark.parametrize("name", sorted(RAGGED_PIPELINES))
def test_empty_and_full_survivor_rows(name):
    """Rows whose predicate keeps nothing (length 0) and everything
    (length n) bracket the ragged charge: zero strips-with-survivors
    on one end, every strip on the other."""
    rng = np.random.default_rng(31)
    n = 300
    mixed = rng.integers(0, 2**16, n, dtype=np.uint32)
    # 60000 fails every pipeline's predicate; [2^14, 2^15) passes all
    none_kept = np.full(n, 60_000, dtype=np.uint32)
    all_kept = rng.integers(2**14, THRESH, n, dtype=np.uint32)
    rows = [mixed, none_kept, all_kept, mixed]
    result = assert_ragged_equivalent(name, rows, vlen=128, mode="fast")
    assert {b.path for b in result.buckets} == {"ragged"}
    _, kept_of = RAGGED_PIPELINES[name]
    assert result.lengths[1] == kept_of(none_kept) == 0
    assert result.lengths[2] == kept_of(all_kept) == n


def test_run_bucket_entry_point_and_to_ragged():
    """The serving entry point reports per-row lengths and converts to
    a RaggedBatch whose mask/rows agree with them."""
    rows = make_rows((2600,) * 3, seed=37)
    svm = SVM(vlen=512, mode="fast")
    result = run_bucket(svm, pipe_pack, rows)
    assert {b.path for b in result.buckets} == {"ragged"}
    assert result.buckets[0].lengths == tuple(result.lengths)
    ragged = result.to_ragged()
    assert isinstance(ragged, RaggedBatch)
    assert ragged.values.shape == (3, 2600)
    for i, row in enumerate(rows):
        kept = int((row < THRESH).sum())
        assert ragged.lengths[i] == kept
        assert ragged.mask[i].sum() == kept
        assert np.array_equal(ragged.row(i), row[row < THRESH])
    assert [len(r) for r in ragged.to_list()] == list(ragged.lengths)


def test_strict_mode_still_loops_with_lengths():
    """Strict mode forbids the matrix path; the loop must still carry
    the per-row lengths column so callers see uniform semantics."""
    rows = make_rows((300,) * 3, seed=41)
    result = assert_ragged_equivalent("pack", rows, vlen=128, mode="strict")
    assert {b.path for b in result.buckets} == {"loop"}
    assert all(isinstance(k, int) for k in result.lengths)


def test_non_prefix_local_consumer_falls_back_to_loop():
    """A reverse (back_permute) of the packed buffer reads undefined
    tail lanes, so the runner must refuse the ragged promotion."""
    def pipe(lz, data):
        flags = lz.p_lt(data, THRESH)
        out, _kept = lz.pack(data, flags)
        rev = lz.reverse(out)
        lz.free(flags)
        lz.free(out)
        return rev

    rows = make_rows((300,) * 3, seed=43)
    loop_outs, loop_counts, result, batch_counts = run_both(
        pipe, rows, vlen=128, mode="fast")
    assert {b.path for b in result.buckets} == {"loop"}
    for want, got in zip(loop_outs, result):
        assert np.array_equal(want, got)  # same allocation order: exact
    assert loop_counts.by_category == batch_counts.by_category


def test_pack2d_kernel_matches_per_row_compaction():
    rng = np.random.default_rng(47)
    src = rng.integers(0, 2**16, (5, 64), dtype=np.uint32)
    flags = rng.integers(0, 2, (5, 64), dtype=np.uint32)
    flags[1] = 0            # empty-survivor row
    flags[2] = 1            # all-survivor row
    dst = np.zeros_like(src)
    kept = pack2d(src, flags, dst)
    for i in range(5):
        want = src[i][flags[i] != 0]
        assert kept[i] == want.size
        assert np.array_equal(dst[i, : kept[i]], want)
    # in-place compaction is part of the kernel contract
    work = src.copy()
    kept2 = pack2d(work, flags, work)
    assert np.array_equal(kept2, kept)
    for i in range(5):
        assert np.array_equal(work[i, : kept[i]], dst[i, : kept[i]])


def test_raggedbatch_validation():
    with pytest.raises(ValueError):
        RaggedBatch(np.zeros(4), np.zeros(1, dtype=np.int64))
    with pytest.raises(ValueError):
        RaggedBatch(np.zeros((2, 4)), np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        RaggedBatch(np.zeros((2, 4)), np.array([5, 0]))
    rb = RaggedBatch(np.arange(8).reshape(2, 4), np.array([2, 4]))
    assert len(rb) == 2
    assert np.array_equal(rb.mask, [[True, True, False, False]] + [[True] * 4])

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kernel == "seg_plus_scan"
        assert args.lmul == [1, 2, 4, 8]


class TestCommands:
    def test_table(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "115,039" in out

    def test_table_unknown(self, capsys):
        assert main(["table", "99"]) == 2

    def test_advise(self, capsys):
        assert main(["advise", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "choose LMUL=4" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--sizes", "100", "1000", "--lmul", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "LMUL=4" in out and "145" in out

    def test_sort_radix(self, capsys):
        assert main(["sort", "--n", "500", "--algo", "radix"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_sort_quicksort(self, capsys):
        assert main(["sort", "--n", "300", "--algo", "quicksort"]) == 0
        assert "quicksort" in capsys.readouterr().out

    def test_fuse(self, capsys):
        assert main(["fuse", "--n", "200", "--vlen", "128"]) == 0
        out = capsys.readouterr().out
        assert "fuse [0, 1, 2, 3]" in out          # the after-dump
        assert "plan: 4 nodes" in out              # the before-dump
        assert "bit-identical" in out

    def test_fuse_filter_pipeline(self, capsys):
        assert main(["fuse", "--pipeline", "filter", "--n", "200",
                     "--vlen", "128", "--codegen", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "pack" in out and "keep" in out

    def test_fuse_backend_flag(self, capsys):
        for backend in ("interp", "codegen"):
            assert main(["fuse", "--n", "200", "--vlen", "128",
                         "--backend", backend]) == 0
            assert "bit-identical" in capsys.readouterr().out

    def test_bench_out_merged_grid_jobs1(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "grid.json"
        assert main(["bench", "--suite", "all", "--n", "2000",
                     "--jobs", "1", "--out", str(out_file)]) == 0
        assert f"wrote merged grid to {out_file}" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        # the merged document carries every suite that ran
        assert set(doc) == {"meta", "fusion", "batch", "codegen"}
        assert doc["meta"]["jobs"] == 1
        assert len(doc["fusion"]) == 4
        assert all(c["identical"] for c in doc["fusion"])
        assert all(c["identical_results"] and c["identical_counters"]
                   for c in doc["batch"])
        assert all(c["codegen_instr"] == c["interp_instr"]
                   for c in doc["codegen"])

    def test_bench_out_matches_across_jobs(self, tmp_path):
        # the merged grid is computed by the parent at any --jobs count,
        # and worker fan-out must not change a single byte of it
        docs = []
        for jobs, name in ((1, "j1.json"), (2, "j2.json")):
            out_file = tmp_path / name
            assert main(["bench", "--suite", "fusion", "--n", "2000",
                         "--jobs", str(jobs), "--out", str(out_file)]) == 0
            docs.append(out_file.read_text().replace(
                f'"jobs": {jobs}', '"jobs": X'))
        assert docs[0] == docs[1]

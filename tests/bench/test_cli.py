"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kernel == "seg_plus_scan"
        assert args.lmul == [1, 2, 4, 8]


class TestCommands:
    def test_table(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out and "115,039" in out

    def test_table_unknown(self, capsys):
        assert main(["table", "99"]) == 2

    def test_advise(self, capsys):
        assert main(["advise", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "choose LMUL=4" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--sizes", "100", "1000", "--lmul", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "LMUL=4" in out and "145" in out

    def test_sort_radix(self, capsys):
        assert main(["sort", "--n", "500", "--algo", "radix"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_sort_quicksort(self, capsys):
        assert main(["sort", "--n", "300", "--algo", "quicksort"]) == 0
        assert "quicksort" in capsys.readouterr().out

    def test_fuse(self, capsys):
        assert main(["fuse", "--n", "200", "--vlen", "128"]) == 0
        out = capsys.readouterr().out
        assert "fuse [0, 1, 2, 3]" in out          # the after-dump
        assert "plan: 4 nodes" in out              # the before-dump
        assert "bit-identical" in out

    def test_fuse_filter_pipeline(self, capsys):
        assert main(["fuse", "--pipeline", "filter", "--n", "200",
                     "--vlen", "128", "--codegen", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "[opaque]" in out and "keep" in out

"""Smoke tests for the experiment regeneration functions at reduced
sizes (the full sizes run in benchmarks/)."""

import pytest

from repro.bench import experiments as E

SMALL = (10**2, 10**3)


class TestTables:
    def test_table1_small(self):
        res = E.table1(sizes=SMALL)
        assert len(res.rows) == 2
        assert res.checks  # references exist for both sizes

    def test_table2_exact_at_1e3(self):
        res = E.table2(sizes=SMALL)
        res.check_within(0.001)  # N=100 excluded inside table2()

    def test_table3_small(self):
        res = E.table3(sizes=SMALL)
        res.check_within(0.07)

    def test_table4_exact(self):
        res = E.table4(sizes=SMALL)
        res.check_within(0.0001)

    def test_table5_small(self):
        res = E.table5(sizes=SMALL)
        res.check_within(0.035)
        assert hasattr(res, "measured")

    def test_table6_small(self):
        res = E.table6(sizes=SMALL)
        res.check_within(0.035)

    def test_table7(self):
        res = E.table7(n=10**3)
        assert len(res.rows) == 4  # four VLENs; references only at 1e4

    def test_figure5_chart_rendered(self):
        res = E.figure5(n=10**3)
        assert res.chart and "Figure 5" in res.chart

    def test_headline_runs_small(self):
        res = E.headline(n=10**4)
        assert len(res.rows) == 4


class TestDeterminism:
    def test_same_result_twice(self):
        a = E.table4(sizes=(100,))
        b = E.table4(sizes=(100,))
        assert a.rows == b.rows

"""Tests for the table/chart renderers."""

from repro.utils.formatting import fmt_count, fmt_ratio, render_ascii_chart, render_table


class TestFormatters:
    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"
        assert fmt_count(None) == "-"

    def test_fmt_ratio(self):
        assert fmt_ratio(2.345) == "2.35"
        assert fmt_ratio(2.345, 3) == "2.345"
        assert fmt_ratio(None) == "-"


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "n"], [["a", 1], ["bb", 22]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "-+-" in lines[2]
        # right-aligned: widths consistent
        assert len(lines[3]) == len(lines[4])

    def test_cell_wider_than_header(self):
        text = render_table(["x"], [["wide-cell"]])
        assert "wide-cell" in text


class TestAsciiChart:
    def test_basic_series(self):
        chart = render_ascii_chart(
            {"lin": [(0, 0), (10, 10)], "flat": [(0, 5), (10, 5)]},
            width=20, height=8, title="T",
        )
        assert chart.startswith("T")
        assert "* = lin" in chart and "o = flat" in chart

    def test_empty(self):
        assert render_ascii_chart({}) == "(empty chart)"

    def test_single_point(self):
        chart = render_ascii_chart({"p": [(1, 1)]}, width=10, height=4)
        assert "*" in chart

"""Tests for the experiment harness and reference-data integrity."""

import pytest

from repro.bench import paper_data as P
from repro.bench.harness import ExperimentResult, rel_err, speedup


class TestHelpers:
    def test_rel_err(self):
        assert rel_err(110, 100) == pytest.approx(0.10)
        assert rel_err(90, 100) == pytest.approx(-0.10)
        assert rel_err(None, 100) is None
        assert rel_err(5, None) is None
        assert rel_err(5, 0) is None

    def test_speedup(self):
        assert speedup(100, 25) == 4
        assert speedup(100, 0) is None


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            "T", "demo", ["a", "b"], [[1, 2], [3, 4]],
            checks=[("x", 100.0, 100.0), ("y", 103.0, 100.0)],
        )

    def test_render_contains_rows(self):
        text = self._result().render()
        assert "T: demo" in text and "3" in text

    def test_max_abs_rel_err(self):
        assert self._result().max_abs_rel_err() == pytest.approx(0.03)

    def test_check_within_passes(self):
        self._result().check_within(0.05)

    def test_check_within_fails(self):
        with pytest.raises(AssertionError, match="y"):
            self._result().check_within(0.01)

    def test_notes_rendered(self):
        r = ExperimentResult("T", "demo", ["a"], [[1]], notes=["hello"])
        assert "note: hello" in r.render()


class TestPaperDataIntegrity:
    def test_sizes_are_decades(self):
        assert list(P.SIZES) == [10**k for k in range(2, 7)]

    def test_all_tables_cover_all_sizes(self):
        for table in (P.TABLE1_RADIX, P.TABLE1_QSORT, P.TABLE2_PADD,
                      P.TABLE3_SCAN, P.TABLE4_SEG):
            assert set(table) == set(P.SIZES)

    def test_figure5_derived_from_table7(self):
        assert P.FIGURE5_PADD_SPEEDUP[128] == 1.0
        assert P.FIGURE5_SEG_SPEEDUP[1024] == pytest.approx(115039 / 25693)

    def test_headline_seg_consistent_with_tables(self):
        """The abstract's 4.29x and 15.09x must follow from Tables 4/5
        at N=10^6 (the reproducible headline pair)."""
        implied_l1 = P.TABLE4_SEG_BASE[10**6] / P.TABLE4_SEG[10**6]
        assert implied_l1 == pytest.approx(P.HEADLINE["seg_scan_lmul1"], abs=0.005)
        implied_l8 = P.TABLE4_SEG_BASE[10**6] / P.TABLE5_SEG_LMUL[8][10**6]
        assert implied_l8 == pytest.approx(P.HEADLINE["seg_scan_lmul_tuned"], abs=0.01)

    def test_table5_lmul2_column_is_corrupt(self):
        """Documented source inconsistency: Table 5's LMUL=2 column
        equals Table 4's baseline column verbatim."""
        assert P.TABLE5_SEG_LMUL[2] == P.TABLE4_SEG_BASE

    def test_table6_contradicts_table5_lmul2(self):
        """...while Table 6's ratios imply ~1.47M at N=10^6, not 11M."""
        implied = P.TABLE4_SEG[10**6] / (P.TABLE6_RATIO[2][10**6] * 2)
        assert implied < 2 * 10**6
        assert P.TABLE5_SEG_LMUL[2][10**6] > 10**7

"""Smoke test for the EXPERIMENTS.md generator."""

import pytest

from repro.bench.report import generate_report, main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(sizes=(100, 1000))

    def test_contains_every_experiment(self, report):
        for exp in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
                    "Table 6", "Table 7", "Figure 5", "Headline"):
            assert exp in report

    def test_summary_table_present(self, report):
        assert "Summary of reproduction quality" in report
        assert "Worst relative error" in report

    def test_inconsistency_record_present(self, report):
        assert "Known inconsistencies" in report
        assert "LMUL=2 column" in report

    def test_stdout_mode(self, capsys):
        # full-size run; keep it to the CLI-path check
        assert main(["--stdout"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "2,562,539" in out

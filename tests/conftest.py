"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM, RVVMachine
from repro.rvv.types import LMUL


@pytest.fixture
def machine() -> RVVMachine:
    """A small-VLEN machine (many strips even for short arrays)."""
    return RVVMachine(vlen=128)


@pytest.fixture(params=["strict", "fast"])
def svm_mode(request) -> str:
    """Parametrize a test over both execution modes."""
    return request.param


@pytest.fixture
def svm(svm_mode) -> SVM:
    return SVM(vlen=128, mode=svm_mode)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)

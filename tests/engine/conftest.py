"""Shared pipelines and runners for the engine suite.

Every pipeline is written against the common SVM/PlanBuilder surface,
so the same function body runs eagerly (``pipe(svm, ...)``) or under
capture (``pipe(lz, ...)``) — the parity tests lean on that symmetry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.rvv.types import LMUL


# ---------------------------------------------------------------------------
# pipelines (api is an SVM or a PlanBuilder)
# ---------------------------------------------------------------------------

def pipe_chain_scan(api, data, lmul):
    """Depth-3 elementwise chain feeding an inclusive plus-scan."""
    api.p_add(data, 10, lmul=lmul)
    api.p_mul(data, 3, lmul=lmul)
    api.p_xor(data, 5, lmul=lmul)
    api.plus_scan(data, lmul=lmul)
    return data


def pipe_cmp_chain(api, data, lmul):
    """Compare head (the awkward 'ge' relation) + arithmetic tail."""
    flags = api.p_ge(data, 2**14, lmul=lmul)
    api.p_mul(flags, 7, lmul=lmul)
    api.p_add(flags, 1, lmul=lmul)
    return flags


def pipe_flags(api, data, lmul):
    """get_flags (expands to two lane ops) + elementwise tail."""
    f = api.get_flags(data, 3, lmul=lmul)
    api.p_add(f, 1, lmul=lmul)
    api.p_sll(f, 2, lmul=lmul)
    return f


def pipe_vv_mix(api, data, lmul):
    """Vector-vector operand + scan tail (exercises the LMUL=8 gate)."""
    other = api.copy(data, lmul=lmul)
    api.p_add(data, other, lmul=lmul)
    api.p_max(data, 3, lmul=lmul)
    api.plus_scan(data, lmul=lmul)
    api.free(other)
    return data


def pipe_alias(api, data, lmul):
    """dst as its own vector operand — legal only as the head lane."""
    api.p_add(data, data, lmul=lmul)
    api.p_mul(data, 3, lmul=lmul)
    api.plus_scan(data, lmul=lmul)
    return data


def pipe_pack_future(api, data, lmul):
    """Opaque pack whose deferred count feeds a later scalar operand."""
    flags = api.p_lt(data, 2**15, lmul=lmul)
    out, kept = api.pack(data, flags, lmul=lmul)
    api.p_add(out, kept, lmul=lmul)
    api.free(flags)
    return out


PIPELINES = {
    "chain_scan": pipe_chain_scan,
    "cmp_chain": pipe_cmp_chain,
    "flags": pipe_flags,
    "vv_mix": pipe_vv_mix,
    "alias": pipe_alias,
    "pack_future": pipe_pack_future,
}


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------

def make_data(svm, n, seed=0):
    rng = np.random.default_rng(seed)
    return svm.array(rng.integers(0, 2**16, n, dtype=np.uint32))


def run_eager(pipe, n, *, vlen=128, lmul=LMUL.M1, mode="strict",
              codegen="ideal", seed=0):
    """The pipeline spelled directly against the SVM (no engine)."""
    svm = SVM(vlen=vlen, mode=mode, codegen=codegen)
    data = make_data(svm, n, seed)
    svm.reset()
    out = pipe(svm, data, lmul)
    return svm.machine.counters.snapshot(), out.to_numpy()


def run_lazy(pipe, n, *, fuse=True, vlen=128, lmul=LMUL.M1, mode="strict",
             codegen="ideal", seed=0):
    """The same pipeline captured and run through the engine."""
    svm = SVM(vlen=vlen, mode=mode, codegen=codegen)
    data = make_data(svm, n, seed)
    svm.reset()
    with svm.lazy(fuse=fuse) as lz:
        out = pipe(lz, data, lmul)
    return svm.machine.counters.snapshot(), out.to_numpy(), svm


@pytest.fixture(params=sorted(PIPELINES))
def pipeline(request):
    return PIPELINES[request.param]

"""Plan-cache behavior: hits, misses, LRU eviction, and correctness of
replaying a cached fusion recipe against fresh buffers."""

from __future__ import annotations

import numpy as np

from repro import SVM
from repro.engine import PlanCache
from repro.rvv.counters import Cat

from .conftest import make_data, pipe_chain_scan, run_eager


def run_pipeline(svm, n, scalar=3, seed=0):
    data = make_data(svm, n, seed)
    with svm.lazy() as lz:
        lz.p_add(data, 10)
        lz.p_mul(data, scalar)
        lz.p_xor(data, 5)
        lz.plus_scan(data)
    return data.to_numpy()


class TestEngineCache:
    def test_repeat_pipeline_hits(self):
        svm = SVM(vlen=128)
        run_pipeline(svm, 100)
        stats = svm.engine.cache.stats
        assert (stats.hits, stats.misses) == (0, 1)
        run_pipeline(svm, 100, scalar=99, seed=1)  # α-equivalent
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5
        assert len(svm.engine.cache) == 1

    def test_different_shape_misses(self):
        svm = SVM(vlen=128)
        run_pipeline(svm, 100)
        run_pipeline(svm, 200)
        assert (svm.engine.cache.stats.hits, svm.engine.cache.stats.misses) == (0, 2)

    def test_cached_replay_is_correct_and_cheap(self):
        """A cache hit must replay with the exact fused counters and
        bit-identical results on fresh data."""
        svm = SVM(vlen=128)
        run_pipeline(svm, 100)

        svm.reset()
        got = run_pipeline(svm, 100, seed=7)
        hit = svm.machine.counters.snapshot()
        assert svm.engine.cache.stats.hits == 1

        eager, ref = run_eager(pipe_chain_scan, 100, seed=7)
        assert np.array_equal(got, ref)
        for cat in Cat:
            assert hit.by_category.get(cat, 0) <= eager.by_category.get(cat, 0)

    def test_fuse_false_bypasses_cache(self):
        svm = SVM(vlen=128)
        data = make_data(svm, 64)
        with svm.lazy(fuse=False) as lz:
            lz.p_add(data, 1)
            lz.plus_scan(data)
        stats = svm.engine.cache.stats
        assert (stats.hits, stats.misses) == (0, 0)


class TestPlanCacheLRU:
    def test_eviction_and_order(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # touch: "b" is now oldest
        cache.put(("c",), 3)
        assert ("b",) not in cache and ("a",) in cache and ("c",) in cache
        assert cache.stats.evictions == 1

    def test_miss_counted(self):
        cache = PlanCache(capacity=2)
        assert cache.get(("nope",)) is None
        assert cache.stats.misses == 1 and cache.stats.hit_rate == 0.0

    def test_clear(self):
        cache = PlanCache(capacity=2)
        cache.put(("a",), 1)
        cache.clear()
        assert len(cache) == 0 and ("a",) not in cache

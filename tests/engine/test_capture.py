"""Plan recording and the structural cache signature."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.engine import PlanBuilder
from repro.engine.ir import Kind
from repro.rvv.types import LMUL

from .conftest import make_data


@pytest.fixture
def svm():
    return SVM(vlen=128)


class TestRecording:
    def test_nodes_record_without_executing(self, svm):
        data = make_data(svm, 32)
        before = data.to_numpy().copy()
        svm.reset()
        lz = PlanBuilder(svm)
        lz.p_add(data, 1)
        lz.plus_scan(data)
        flags = lz.p_lt(data, 100)
        lz.pack(data, flags)
        plan = lz.build()
        # nothing ran: data untouched, only the flag-buffer allocation
        # charged (capture defers execution, not memory)
        assert np.array_equal(data.to_numpy(), before)
        assert svm.machine.counters.vector_total == 0
        assert [n.kind for n in plan.nodes] == [
            Kind.EW_VX, Kind.SCAN, Kind.CMP_VX, Kind.PACK,
        ]

    def test_temp_flag_tracks_recorder_allocations(self, svm):
        data = make_data(svm, 32)
        lz = PlanBuilder(svm)
        flags = lz.p_lt(data, 100)
        plan = lz.build()
        bufs = {b.array.ptr.addr: b for b in plan.buffers.values()}
        assert not bufs[data.ptr.addr].temp
        assert bufs[flags.ptr.addr].temp

    def test_free_allows_address_recycling(self, svm):
        data = make_data(svm, 32)
        lz = PlanBuilder(svm)
        a = lz.empty(32)
        lz.p_add(a, 1)
        lz.free(a)
        b = lz.empty(32)  # may land on the freed address
        lz.p_add(b, 2)
        plan = lz.build()
        # the recycled allocation must get its own buffer id
        # (nodes: [p_add(a), free(a), p_add(b)] — allocation records none)
        assert plan.nodes[0].dst != plan.nodes[2].dst

    def test_mismatched_lengths_rejected_at_capture(self, svm):
        a, b = make_data(svm, 32), make_data(svm, 16, seed=1)
        lz = PlanBuilder(svm)
        with pytest.raises(Exception):
            lz.p_add(a, b)


class TestSignature:
    def capture(self, svm, n, scalar, lmul=LMUL.M1, dtype=np.uint32):
        data = svm.array(np.arange(n, dtype=dtype), dtype)
        lz = PlanBuilder(svm)
        lz.p_add(data, scalar, lmul=lmul)
        lz.p_mul(data, scalar, lmul=lmul)
        lz.plus_scan(data, lmul=lmul)
        return lz.build()

    def test_alpha_equivalent_plans_share_a_key(self, svm):
        p1 = self.capture(svm, 100, scalar=7)
        p2 = self.capture(svm, 100, scalar=99)  # fresh buffers, new constants
        assert p1.signature(128, "ideal") == p2.signature(128, "ideal")

    def test_key_depends_on_shape_and_machine(self, svm):
        base = self.capture(svm, 100, 7).signature(128, "ideal")
        assert self.capture(svm, 101, 7).signature(128, "ideal") != base
        assert self.capture(svm, 100, 7).signature(256, "ideal") != base
        assert self.capture(svm, 100, 7).signature(128, "paper") != base
        assert (self.capture(svm, 100, 7, lmul=LMUL.M4).signature(128, "ideal")
                != base)
        assert (self.capture(svm, 100, 7, dtype=np.uint16).signature(128, "ideal")
                != base)

    def test_key_distinguishes_vx_from_vv(self, svm):
        a, b = make_data(svm, 32), make_data(svm, 32, seed=1)
        lz = PlanBuilder(svm)
        lz.p_add(a, 5)
        vx = lz.build().signature(128, "ideal")
        lz = PlanBuilder(svm)
        lz.p_add(a, b)
        assert lz.build().signature(128, "ideal") != vx

"""Generated-kernel backend (``repro.engine.codegen``) equivalence.

The codegen backend must be bit-identical and per-category
counter-identical to the interpreted specialized executor across the
full VLEN × LMUL grid — for single-call and batched execution — and
must fall back to the interpreter wherever generated kernels don't
apply (plans with no fused groups, strict mode). CompiledPlan must survive a pickle
round-trip (the persistent store's transport).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import SVM
from repro.engine.executor import DEFAULT_BACKEND, resolve_backend
from repro.engine.ir import EngineError
from repro.rvv.types import LMUL

from .conftest import PIPELINES, make_data

VLENS = (128, 256, 512, 1024)
LMULS = (1, 2, 4, 8)
#: odd on purpose: every VLEN×LMUL point gets a remainder strip
N = 777


def _run(pipe, *, vlen, lmul, backend, n=N, mode="fast", seed=0):
    svm = SVM(vlen=vlen, codegen="paper", mode=mode, backend=backend)
    data = make_data(svm, n, seed)
    svm.reset()
    with svm.lazy() as lz:
        out = pipe(lz, data, lmul)
    return svm.machine.counters.snapshot(), out.to_numpy(), svm


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("lmul", LMULS)
def test_backend_equivalence_grid(pipeline, vlen, lmul):
    lm = LMUL(lmul)
    interp, ref, _ = _run(pipeline, vlen=vlen, lmul=lm, backend="interp")
    codegen, got, _ = _run(pipeline, vlen=vlen, lmul=lm, backend="codegen")
    assert np.array_equal(ref, got)
    assert interp.by_category == codegen.by_category


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("lmul", LMULS)
def test_backend_equivalence_batch(vlen, lmul):
    lm = LMUL(lmul)
    g = np.random.default_rng(0)
    rows = [g.integers(0, 2**16, 300, dtype=np.uint32) for _ in range(8)]

    def pipe(lz, data):
        return PIPELINES["chain_scan"](lz, data, lm)

    outs, snaps = {}, {}
    for backend in ("interp", "codegen"):
        svm = SVM(vlen=vlen, codegen="paper", mode="fast", backend=backend)
        res = svm.batch(pipe, rows)
        outs[backend] = [np.array(r) for r in res]
        snaps[backend] = svm.machine.counters.snapshot()
    assert all(
        np.array_equal(a, b) for a, b in zip(outs["interp"], outs["codegen"])
    )
    assert snaps["interp"].by_category == snaps["codegen"].by_category


def test_whole_plan_kernel_and_copy_elision():
    _, _, svm = _run(PIPELINES["chain_scan"], vlen=512, lmul=LMUL.M1,
                     backend="codegen", n=1000)
    cp = svm.engine.last_fused.compiled
    assert cp is not None
    # every unit fused -> the whole plan runs as one generated call
    assert cp.plan_fn is not None
    assert cp.min_n == 1000
    # head == dst and no operand re-reads dst: the kernel operates
    # in-place on the destination view (no head copy, no writeback)
    assert "copy=True" not in cp.source
    assert ".accumulate(" in cp.source


def test_alias_keeps_copy_discipline():
    # p_add(data, data): the head's vector operand aliases dst, so the
    # generated kernel must keep the interpreter's copy-then-writeback
    interp, ref, _ = _run(PIPELINES["alias"], vlen=256, lmul=LMUL.M1,
                          backend="interp")
    codegen, got, svm = _run(PIPELINES["alias"], vlen=256, lmul=LMUL.M1,
                             backend="codegen")
    assert np.array_equal(ref, got)
    assert interp.by_category == codegen.by_category
    assert "copy=True" in svm.engine.last_fused.compiled.source


def test_unfused_plan_has_no_compiled_kernels():
    # seg_scan captures as a structured node but never fuses; with no
    # fused groups compile_fused returns None and the codegen backend
    # falls back to the interpreter's replay with identical behavior
    def pipe(lz, data, lmul):
        flags = lz.get_flags(data, 0, lmul=lmul)
        lz.seg_plus_scan(data, flags, lmul=lmul)
        lz.free(flags)
        return data

    interp, ref, _ = _run(pipe, vlen=256, lmul=LMUL.M1, backend="interp")
    codegen, got, svm = _run(pipe, vlen=256, lmul=LMUL.M1, backend="codegen")
    assert np.array_equal(ref, got)
    assert interp.by_category == codegen.by_category
    fused = svm.engine.last_fused
    # no groups compiled, so there is no whole-plan kernel
    assert fused.compiled is None or fused.compiled.plan_fn is None


def test_strict_mode_is_backend_independent(pipeline):
    interp, ref, _ = _run(pipeline, vlen=128, lmul=LMUL.M1,
                          backend="interp", mode="strict")
    codegen, got, _ = _run(pipeline, vlen=128, lmul=LMUL.M1,
                           backend="codegen", mode="strict")
    assert np.array_equal(ref, got)
    assert interp.by_category == codegen.by_category


def test_empty_input_both_backends():
    interp, ref, _ = _run(PIPELINES["chain_scan"], vlen=256, lmul=LMUL.M1,
                          backend="interp", n=0)
    codegen, got, _ = _run(PIPELINES["chain_scan"], vlen=256, lmul=LMUL.M1,
                           backend="codegen", n=0)
    assert np.array_equal(ref, got)
    assert interp.by_category == codegen.by_category


def test_compiled_plan_pickle_roundtrip():
    svm = SVM(vlen=512, codegen="paper", mode="fast", backend="codegen")
    data = make_data(svm, 500)
    with svm.lazy() as lz:
        PIPELINES["chain_scan"](lz, data, LMUL.M1)
    ref = data.to_numpy()
    fused = svm.engine.last_fused
    clone = pickle.loads(pickle.dumps(fused.compiled))
    assert clone.source == fused.compiled.source
    assert clone.plan_fn is not None
    assert clone.min_n == fused.compiled.min_n
    # replay the cached plan through the unpickled kernels
    fused.compiled = clone
    data2 = make_data(svm, 500)
    with svm.lazy() as lz:
        PIPELINES["chain_scan"](lz, data2, LMUL.M1)
    assert np.array_equal(data2.to_numpy(), ref)


def test_resolve_backend(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None) == DEFAULT_BACKEND
    assert resolve_backend("interp") == "interp"
    monkeypatch.setenv("REPRO_BACKEND", "interp")
    assert resolve_backend(None) == "interp"
    with pytest.raises(EngineError):
        resolve_backend("jit")

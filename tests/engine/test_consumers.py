"""The engine's real consumer: the pack/filter pipelines route through
``svm.lazy()`` and must be correct *and* never costlier than the same
pipeline spelled eagerly."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.algorithms.pack_filter import filter_in_range, filter_less_than
from repro.rvv.counters import Cat

from .conftest import make_data


def eager_in_range(svm, data, lo, hi):
    """filter_in_range spelled directly against the SVM (no engine)."""
    lt_hi = svm.p_lt(data, hi)
    ge_lo = svm.p_ge(data, lo)
    svm.p_mul(ge_lo, lt_hi)
    out, kept = svm.pack(data, ge_lo)
    svm.free(ge_lo)
    svm.free(lt_hi)
    return out, kept


@pytest.mark.parametrize("n", [0, 1, 33, 500])
def test_filter_in_range_matches_eager_and_saves(n):
    lo, hi = 2**14, 3 * 2**14

    svm_e = SVM(vlen=128)
    data = make_data(svm_e, n)
    svm_e.reset()
    out_e, kept_e = eager_in_range(svm_e, data, lo, hi)
    eager = svm_e.machine.counters.snapshot()

    svm_f = SVM(vlen=128)
    data = make_data(svm_f, n)
    svm_f.reset()
    out_f, kept_f = filter_in_range(svm_f, data, lo, hi)
    fused = svm_f.machine.counters.snapshot()

    host = data.to_numpy()
    expect = host[(host >= lo) & (host < hi)]
    assert kept_e == kept_f == len(expect)
    assert np.array_equal(out_e.to_numpy()[:kept_e], expect)
    assert np.array_equal(out_f.to_numpy()[:kept_f], expect)
    for cat in Cat:
        assert fused.by_category.get(cat, 0) <= eager.by_category.get(cat, 0)


@pytest.mark.parametrize("mode", ["strict", "fast"])
def test_filter_less_than_both_modes(mode):
    svm = SVM(vlen=128, mode=mode)
    data = make_data(svm, 300)
    out, kept = filter_less_than(svm, data, 2**15)
    host = data.to_numpy()
    expect = host[host < 2**15]
    assert kept == len(expect)
    assert np.array_equal(out.to_numpy()[:kept], expect)


def test_repeated_filters_reuse_the_plan():
    svm = SVM(vlen=128)
    for seed in range(3):
        data = make_data(svm, 256, seed=seed)
        out, kept = filter_in_range(svm, data, 100, 2**15)
        host = data.to_numpy()
        expect = host[(host >= 100) & (host < 2**15)]
        assert kept == len(expect)
        assert np.array_equal(out.to_numpy()[:kept], expect)
    stats = svm.engine.cache.stats
    assert stats.misses == 1 and stats.hits == 2

"""End-to-end engine parity properties.

The load-bearing invariants of the subsystem:

* ``svm.lazy(fuse=False)`` is a *bit- and counter-identical* spelling
  of the eager program;
* fused execution is bit-identical and never increases **any**
  per-category counter;
* strict and fast execution of a fused plan agree exactly on results
  and on every counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rvv.counters import Cat
from repro.rvv.types import LMUL

from .conftest import PIPELINES, run_eager, run_lazy

#: Awkward sizes: empty, single element, below/at/above one strip
#: (vlmax = 4 for uint32 at VLEN=128 LMUL=1), and many strips.
SIZES = [0, 1, 3, 4, 5, 31, 32, 33, 100, 1000]


class TestUnfusedIsIdentity:
    """fuse=False replays the recording verbatim."""

    @pytest.mark.parametrize("n", SIZES)
    def test_counters_and_bits_match_eager(self, pipeline, n):
        eager, ref = run_eager(pipeline, n)
        lazy, got, _ = run_lazy(pipeline, n, fuse=False)
        assert np.array_equal(ref, got)
        assert lazy.by_category == eager.by_category


class TestFusedParity:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("codegen", ["ideal", "paper"])
    def test_bit_identical_and_never_worse(self, pipeline, n, codegen):
        eager, ref = run_eager(pipeline, n, codegen=codegen)
        fused, got, _ = run_lazy(pipeline, n, codegen=codegen)
        assert np.array_equal(ref, got)
        for cat in Cat:
            assert fused.by_category.get(cat, 0) <= eager.by_category.get(cat, 0), (
                f"fused increased {cat.value} "
                f"({eager.by_category.get(cat, 0)} -> {fused.by_category.get(cat, 0)})"
            )

    @pytest.mark.parametrize("lmul", [LMUL.M2, LMUL.M8])
    @pytest.mark.parametrize("n", [0, 1, 33, 500])
    def test_high_lmul(self, pipeline, n, lmul):
        eager, ref = run_eager(pipeline, n, lmul=lmul)
        fused, got, _ = run_lazy(pipeline, n, lmul=lmul)
        assert np.array_equal(ref, got)
        for cat in Cat:
            assert fused.by_category.get(cat, 0) <= eager.by_category.get(cat, 0)

    @pytest.mark.parametrize("vlen", [256, 1024])
    @pytest.mark.parametrize("n", [33, 1000])
    def test_other_vlens(self, pipeline, n, vlen):
        eager, ref = run_eager(pipeline, n, vlen=vlen)
        fused, got, _ = run_lazy(pipeline, n, vlen=vlen)
        assert np.array_equal(ref, got)
        for cat in Cat:
            assert fused.by_category.get(cat, 0) <= eager.by_category.get(cat, 0)

    @pytest.mark.parametrize("n", [33, 1000])
    def test_deep_chain_actually_saves(self, n):
        """The point of the subsystem: a fusable chain gets cheaper."""
        pipe = PIPELINES["chain_scan"]
        eager, _ = run_eager(pipe, n)
        fused, _, _ = run_lazy(pipe, n)
        assert fused.total < eager.total
        assert fused.by_category[Cat.VMEM] < eager.by_category[Cat.VMEM]
        assert fused.by_category[Cat.VCONFIG] < eager.by_category[Cat.VCONFIG]


class TestStrictFastAgree:
    @pytest.mark.parametrize("n", SIZES)
    def test_fused_counters_and_bits(self, pipeline, n):
        strict, sref, _ = run_lazy(pipeline, n, mode="strict")
        fast, fref, _ = run_lazy(pipeline, n, mode="fast")
        assert np.array_equal(sref, fref)
        assert strict.by_category == fast.by_category

    @pytest.mark.parametrize("lmul", [LMUL.M8])
    @pytest.mark.parametrize("codegen", ["ideal", "paper"])
    def test_fused_counters_high_lmul(self, pipeline, lmul, codegen):
        strict, sref, _ = run_lazy(pipeline, 200, lmul=lmul, codegen=codegen)
        fast, fref, _ = run_lazy(pipeline, 200, lmul=lmul, mode="fast",
                                 codegen=codegen)
        assert np.array_equal(sref, fref)
        assert strict.by_category == fast.by_category


class TestFutures:
    def test_pack_count_resolves_identically(self):
        from repro import SVM
        from .conftest import make_data

        svm = SVM(vlen=128)
        data = make_data(svm, 200)
        expected = int(np.count_nonzero(data.to_numpy() < 2**15))
        with svm.lazy() as lz:
            flags = lz.p_lt(data, 2**15)
            _, kept = lz.pack(data, flags)
        assert kept.value == expected
        assert int(kept) == expected

    def test_future_read_before_execution_raises(self):
        from repro import SVM
        from repro.engine import ScalarFuture
        from repro.engine.ir import EngineError
        from .conftest import make_data

        svm = SVM(vlen=128)
        data = make_data(svm, 16)
        with svm.lazy() as lz:
            flags = lz.p_lt(data, 4)
            _, kept = lz.pack(data, flags)
            assert isinstance(kept, ScalarFuture)
            with pytest.raises(EngineError):
                _ = kept.value
        assert kept.resolved

"""Unit tests of the fusion and dead-temp-elimination passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.engine import PlanBuilder
from repro.engine.fuse import GroupSpec, dead_temp_elimination, fuse, materialize
from repro.rvv.types import LMUL

from .conftest import make_data


@pytest.fixture
def svm():
    return SVM(vlen=128)


def capture(svm, body):
    lz = PlanBuilder(svm)
    body(lz)
    return lz.build()


def groups(fused):
    return [u for u in fused.units if isinstance(u, GroupSpec)]


class TestChains:
    def test_elementwise_chain_fuses(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.p_mul(data, 2)
            lz.p_xor(data, 3)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1, 2))]

    def test_single_node_demoted_to_eager(self, svm):
        data = make_data(svm, 64)
        fused = fuse(capture(svm, lambda lz: lz.p_add(data, 1)))
        assert fused.units == [0]

    def test_scan_tail_attaches(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.plus_scan(data)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1), scan=True)]
        g = materialize(capture(svm, body), fused.units[0])
        assert g.scan_op == "plus" and len(g.lane_ops) == 1

    def test_exclusive_scan_stays_eager(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.scan_exclusive(data)

        fused = fuse(capture(svm, body))
        assert fused.units == [0, 1]

    def test_lone_scan_stays_eager(self, svm):
        data = make_data(svm, 64)
        fused = fuse(capture(svm, lambda lz: lz.plus_scan(data)))
        assert fused.units == [0]

    def test_get_flags_contributes_two_lanes(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            f = lz.get_flags(data, 3)
            lz.p_add(f, 1)

        plan = capture(svm, body)
        fused = fuse(plan)
        (g,) = groups(fused)
        mat = materialize(plan, g)
        assert [l.op for l in mat.lane_ops] == ["p_srl", "p_and", "p_add"]


class TestBoundaries:
    def test_lmul_mismatch_splits(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1, lmul=LMUL.M1)
            lz.p_mul(data, 2, lmul=LMUL.M2)

        fused = fuse(capture(svm, body))
        assert fused.units == [0, 1]

    def test_different_dst_splits(self, svm):
        a, b = make_data(svm, 64), make_data(svm, 64, seed=1)

        def body(lz):
            lz.p_add(a, 1)
            lz.p_add(b, 1)

        fused = fuse(capture(svm, body))
        assert fused.units == [0, 1]

    def test_opaque_closes_group(self, svm):
        data = make_data(svm, 64)
        idx = make_data(svm, 64, seed=1)

        def body(lz):
            lz.p_add(data, 1)
            lz.p_mul(data, 2)
            lz.permute(data, idx)
            lz.p_add(data, 3)

        fused = fuse(capture(svm, body))
        assert fused.units[0] == GroupSpec((0, 1))
        assert fused.units[1] == 2  # permute replays eagerly
        assert fused.units[2] == 3  # single tail node demoted

    def test_cmp_with_fresh_source_closes_group(self, svm):
        data = make_data(svm, 64)
        flags = make_data(svm, 64, seed=2)  # caller-owned (not a DCE temp)

        def body(lz):
            lz.p_add(flags, 1)
            lz.p_lt(data, 7, out=flags)  # re-reads data: needs the store
            lz.p_mul(flags, 2)

        fused = fuse(capture(svm, body))
        # the compare cannot extend the open group (its source must be
        # read after the pending store); it opens the next group instead
        assert fused.units == [0, GroupSpec((1, 2))]

    def test_cmp_on_accumulator_fuses_midgroup(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.p_lt(data, 100, out=data)  # src == dst: stays in registers
            lz.p_mul(data, 5)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1, 2))]


class TestAliasing:
    def test_dst_operand_legal_as_head_lane(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, data)  # acc just loaded, memory still agrees
            lz.p_mul(data, 3)
            lz.plus_scan(data)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1, 2), scan=True)]

    def test_dst_operand_illegal_after_divergence(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.p_mul(data, data)  # memory is stale: must not fuse

        fused = fuse(capture(svm, body))
        assert fused.units == [0, 1]


class TestScanGate:
    def test_vx_chain_scan_fuses_at_lmul8(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1, lmul=LMUL.M8)
            lz.plus_scan(data, lmul=LMUL.M8)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1), scan=True)]

    def test_vv_chain_scan_rejected_at_lmul8(self, svm):
        data = make_data(svm, 64)
        other = make_data(svm, 64, seed=1)

        def body(lz):
            lz.p_add(data, other, lmul=LMUL.M8)
            lz.p_mul(data, 3, lmul=LMUL.M8)
            lz.plus_scan(data, lmul=LMUL.M8)

        fused = fuse(capture(svm, body))
        # the elementwise pair still fuses; the scan would spill an
        # extra value at LMUL=8, so it stays an eager unit
        assert fused.units == [GroupSpec((0, 1)), 2]

    def test_vv_chain_scan_fuses_at_lmul1(self, svm):
        data = make_data(svm, 64)
        other = make_data(svm, 64, seed=1)

        def body(lz):
            lz.p_add(data, other, lmul=LMUL.M1)
            lz.plus_scan(data, lmul=LMUL.M1)

        fused = fuse(capture(svm, body))
        assert fused.units == [GroupSpec((0, 1), scan=True)]


class TestMixedWidth:
    def test_mixed_sew_cmp_head_stays_eager(self, svm):
        narrow = svm.array(np.arange(64, dtype=np.uint16), np.uint16)

        def body(lz):
            flags = lz.p_lt(narrow, 30)  # uint16 source, uint32 flags
            lz.p_add(flags, 1)

        fused = fuse(capture(svm, body))
        # eager strip-mines the compare at SEW=16; a fused loop would
        # run at the destination's SEW=32 — so the head replays eagerly
        assert fused.units == [0, 1]


class TestDeadTempElimination:
    def test_unread_temp_chain_removed(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            flags = lz.p_lt(data, 100)
            lz.p_add(flags, 1)
            lz.free(flags)

        plan = capture(svm, body)
        assert dead_temp_elimination(plan) == (0, 1)
        fused = fuse(plan)
        assert fused.removed == (0, 1)
        assert fused.units == [2]  # only the free remains

    def test_live_out_buffer_kept(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)  # caller-owned: never removable

        plan = capture(svm, body)
        assert dead_temp_elimination(plan) == ()

    def test_read_before_free_keeps_writes(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            flags = lz.p_lt(data, 100)
            lz.p_mul(data, flags)  # read: the write is observable
            lz.free(flags)

        assert dead_temp_elimination(capture(svm, body)) == ()

    def test_overwrite_kills_earlier_writes(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            flags = lz.p_lt(data, 100)     # dead: overwritten below
            lz.p_add(flags, 1)             # dead
            lz.p_lt(data, 7, out=flags)    # kill (fresh src, full write)
            lz.p_mul(data, flags)
            lz.free(flags)

        assert dead_temp_elimination(capture(svm, body)) == (0, 1)

    def test_opaque_read_keeps_temp_alive(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            flags = lz.p_lt(data, 100)
            lz.pack(data, flags)
            lz.free(flags)

        assert dead_temp_elimination(capture(svm, body)) == ()


class TestDescribe:
    def test_plan_and_fused_dumps(self, svm):
        data = make_data(svm, 64)

        def body(lz):
            lz.p_add(data, 1)
            lz.p_mul(data, 2)
            lz.plus_scan(data)

        plan = capture(svm, body)
        fused = fuse(plan)
        assert "p_add.vx" in plan.describe()
        text = fused.describe(plan)
        assert "fuse [0, 1, 2]" in text
        assert "plus-scan tail" in text

"""Native backend tier: compiled whole-plan C kernels.

The contracts under test (see ``docs/native.md``):

* ``backend="native"`` — the warm-run counter contract: the first
  execution of a plan replays through codegen while recording its
  counter-charge profile; every later execution runs the compiled C
  kernel and replays that profile, so results AND per-category
  counters stay bit-identical to the interpreter forever;
* ``backend="native-speed"`` — results stay bit-identical, counters
  are compiled out entirely (zero bookkeeping);
* graceful degradation — no toolchain, a structurally ineligible plan
  (pack), or strict mode all fall back to the codegen tier with the
  full identity contract intact;
* persistence — the lowered C source rides inside the plan store
  entry next to the generated Python kernels, and the ``.c``/``.so``
  artifacts land under ``<cache_dir>/native/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.engine.native import (
    NativePlan,
    native_available,
    reset_native_caches,
)
from repro.rvv.types import LMUL

from .conftest import PIPELINES, make_data

N = 97

#: Pipelines the native tier must fully lower (everything except the
#: pack-carrying one, whose data-dependent output length is the
#: registry's one declared ``native=False`` escape hatch).
LOWERABLE = sorted(set(PIPELINES) - {"pack_future"})

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this host"
)


def _observe(svm, pipe, lmul, seed=0):
    """One captured execution on fresh inputs: (result, counters)."""
    data = make_data(svm, N, seed)
    svm.machine.counters.reset()
    with svm.lazy() as lz:
        out = pipe(lz, data, lmul)
    counts = {cat: k for cat, k in
              svm.machine.counters.snapshot().by_category.items() if k}
    return out.to_numpy(), counts, lz.fused


@pytest.mark.parametrize("name", LOWERABLE)
@needs_cc
def test_warm_run_counter_identity(name):
    """Runs 2..k replay the C kernel; results and counters must stay
    identical to the interpreter on every one of them."""
    pipe = PIPELINES[name]
    ref_svm = SVM(vlen=128, mode="fast", backend="interp")
    ref, ref_counts, _ = _observe(ref_svm, pipe, LMUL.M1)

    svm = SVM(vlen=128, mode="fast", backend="native")
    for run in range(3):
        got, counts, fused = _observe(svm, pipe, LMUL.M1)
        assert np.array_equal(ref, got), (name, run)
        assert counts == ref_counts, (name, run)
    # the tier really engaged: the plan lowered and, after the warm-up,
    # recorded the charge profile the compiled replays re-apply
    assert isinstance(fused.native, NativePlan), name
    assert fused.native.charge_items is not None, name


@needs_cc
def test_compiled_replay_actually_runs(monkeypatch):
    """The second execution goes through NativePlan.run, not codegen."""
    calls = []
    orig = NativePlan.run
    monkeypatch.setattr(NativePlan, "run",
                        lambda self, svm, plan: (calls.append(1),
                                                 orig(self, svm, plan))[1])
    svm = SVM(vlen=128, mode="fast", backend="native")
    pipe = PIPELINES["chain_scan"]
    _observe(svm, pipe, LMUL.M1)
    assert calls == []          # warm-up replays codegen
    _observe(svm, pipe, LMUL.M1)
    assert calls == [1]         # replay compiled


@needs_cc
def test_future_threading_not_stale():
    """A plan producing a scalar future consumed downstream must
    recompute it per execution — replays on new data may not reuse the
    warm-up's resolved value."""

    def pipe(api, data, lmul):
        total = api.reduce(data, lmul=lmul)
        api.p_add(data, total, lmul=lmul)   # future as scalar operand
        api.plus_scan(data, lmul=lmul)
        return data

    def ref(seed):
        svm = SVM(vlen=128, mode="fast", backend="interp")
        return _observe(svm, pipe, LMUL.M1, seed)[:2]

    svm = SVM(vlen=128, mode="fast", backend="native")
    for seed in (0, 1, 2):      # seed 1, 2 replay with different data
        out, counts, _ = _observe(svm, pipe, LMUL.M1, seed)
        ref_out, ref_counts = ref(seed)
        assert np.array_equal(out, ref_out), seed
        assert counts == ref_counts, seed


@needs_cc
@pytest.mark.parametrize("name", LOWERABLE)
def test_speed_mode_zero_counters(name):
    """native-speed: bit-identical results, counters compiled out."""
    pipe = PIPELINES[name]
    ref_svm = SVM(vlen=128, mode="fast", backend="interp")
    ref, _, _ = _observe(ref_svm, pipe, LMUL.M1)

    svm = SVM(vlen=128, mode="fast", backend="native-speed")
    for run in range(2):
        got, counts, fused = _observe(svm, pipe, LMUL.M1)
        assert np.array_equal(ref, got), (name, run)
        assert counts == {}, (name, run)
    assert isinstance(fused.native, NativePlan), name


def test_no_toolchain_falls_back(monkeypatch):
    """REPRO_NATIVE_DISABLE forces the no-compiler path: the tier
    degrades to codegen with results and counters intact."""
    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    reset_native_caches()
    try:
        assert not native_available()
        pipe = PIPELINES["chain_scan"]
        ref_svm = SVM(vlen=128, mode="fast", backend="codegen")
        ref, ref_counts, _ = _observe(ref_svm, pipe, LMUL.M1)
        svm = SVM(vlen=128, mode="fast", backend="native")
        for run in range(2):
            got, counts, _ = _observe(svm, pipe, LMUL.M1)
            assert np.array_equal(ref, got), run
            assert counts == ref_counts, run
    finally:
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        reset_native_caches()


def test_ineligible_plan_falls_back():
    """pack (native=False) keeps the whole plan on the codegen tier,
    marked 'unavailable' so lowering is attempted exactly once."""
    pipe = PIPELINES["pack_future"]
    ref_svm = SVM(vlen=128, mode="fast", backend="codegen")
    ref, ref_counts, _ = _observe(ref_svm, pipe, LMUL.M1)
    svm = SVM(vlen=128, mode="fast", backend="native")
    for run in range(2):
        got, counts, fused = _observe(svm, pipe, LMUL.M1)
        assert np.array_equal(ref, got), run
        assert counts == ref_counts, run
    assert fused.native == "unavailable"


def test_strict_mode_never_runs_native(monkeypatch):
    """Strict mode fails the all-fast gate: the machine intrinsics
    stay authoritative and the C kernel never executes."""
    calls = []
    monkeypatch.setattr(
        NativePlan, "run",
        lambda self, svm, plan: calls.append(1))
    pipe = PIPELINES["chain_scan"]
    ref_svm = SVM(vlen=128, mode="strict", backend="codegen")
    ref, ref_counts, _ = _observe(ref_svm, pipe, LMUL.M1)
    svm = SVM(vlen=128, mode="strict", backend="native")
    for _ in range(2):
        got, counts, _ = _observe(svm, pipe, LMUL.M1)
        assert np.array_equal(ref, got)
        assert counts == ref_counts
    assert calls == []


@needs_cc
def test_batch_native_2d(monkeypatch):
    """svm.batch under the native backend evaluates whole buckets via
    the compiled 2D entry point with identical results and counters."""
    calls = []
    orig = NativePlan.run2d
    monkeypatch.setattr(
        NativePlan, "run2d",
        lambda self, *a, **k: (calls.append(1), orig(self, *a, **k))[1])

    def pipe(lz, data):
        lz.p_add(data, 10)
        lz.p_xor(data, 3)
        lz.plus_scan(data)
        return data

    rng = np.random.default_rng(5)
    inputs = [rng.integers(0, 2**16, 64).tolist() for _ in range(6)]

    ref_svm = SVM(vlen=128, mode="fast", backend="interp")
    ref = ref_svm.batch(pipe, inputs)
    ref_counts = ref_svm.machine.counters.snapshot().by_category

    svm = SVM(vlen=128, mode="fast", backend="native")
    got = svm.batch(pipe, inputs)
    assert calls, "bucket did not take the compiled 2D path"
    for r, g in zip(ref, got):
        assert np.array_equal(r, g)
    assert svm.machine.counters.snapshot().by_category == ref_counts


@needs_cc
def test_plan_store_persists_native_source(tmp_path):
    """The lowered C source persists in the plan store; a second
    process (fresh SVM, same dir) reuses it without re-lowering."""
    reset_native_caches()  # cold process: no memoized .so for the plan
    pipe = PIPELINES["chain_scan"]

    svm1 = SVM(vlen=128, mode="fast", backend="native",
               cache_dir=str(tmp_path))
    ref, ref_counts, fused1 = _observe(svm1, pipe, LMUL.M1)
    assert isinstance(fused1.native, NativePlan)
    native_dir = tmp_path / "native"
    digest = fused1.native.digest
    assert (native_dir / f"{digest}.c").is_file()
    assert (native_dir / f"{digest}.so").is_file()

    # simulate a new process: fresh SVM and plan cache, same store
    svm2 = SVM(vlen=128, mode="fast", backend="native",
               cache_dir=str(tmp_path))
    for run in range(2):
        got, counts, fused2 = _observe(svm2, pipe, LMUL.M1)
        assert np.array_equal(ref, got), run
        assert counts == ref_counts, run
    assert isinstance(fused2.native, NativePlan)
    assert fused2.native.digest == digest
    assert svm2.engine.store.hits >= 1

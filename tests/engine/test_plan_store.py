"""Persistent plan store: warm cold-starts skip compilation entirely,
and the schema/fingerprint/key guards make stale or corrupted cache
state a silent miss — never a wrong result."""

from __future__ import annotations

import pickle

import numpy as np

from repro import SVM
from repro.cli import main
from repro.engine.cache import (
    SCHEMA_VERSION,
    PlanStore,
    code_fingerprint,
    default_cache_dir,
    store_from_env,
)
from repro.rvv.types import LMUL

from .conftest import PIPELINES, make_data

N = 600


def _run(cache_dir=None, *, profile=False, seed=0):
    svm = SVM(vlen=256, codegen="paper", mode="fast", backend="codegen",
              cache_dir=str(cache_dir) if cache_dir else None,
              profile=profile)
    data = make_data(svm, N, seed)
    svm.reset()
    with svm.lazy() as lz:
        PIPELINES["chain_scan"](lz, data, LMUL.M1)
    return data.to_numpy(), svm


def _span_names(doc, out=None):
    out = set() if out is None else out
    def walk(span):
        out.add(span["name"])
        for child in span.get("children", ()):
            walk(child)
    walk(doc["profile"])
    return out


def test_warm_start_skips_compile(tmp_path):
    ref, svm1 = _run(tmp_path)
    assert len(svm1.engine.store.entries()) == 1

    # fresh process-equivalent: new SVM, new engine, empty memory LRU —
    # the only shared state is the on-disk store
    got, svm2 = _run(tmp_path, profile=True)
    assert np.array_equal(got, ref)
    col = svm2.profiler
    col.finish()
    doc = col.to_json()
    # capture happened, but fuse/specialize/codegen did not
    assert "plan.compile" not in _span_names(doc)
    hits = [e for e in doc["events"] if e["name"] == "plan_cache.hit"]
    assert hits and hits[0]["meta"]["source"] == "disk"
    assert doc["metrics"]["engine.plan_cache.disk_hits"] == 1
    assert not any(e["name"] == "codegen.compile" for e in doc["events"])


def test_cold_compile_emits_spans(tmp_path):
    _, svm = _run(tmp_path, profile=True)
    col = svm.profiler
    col.finish()
    doc = col.to_json()
    assert "plan.compile" in _span_names(doc)
    assert any(e["name"] == "codegen.compile" for e in doc["events"])
    assert doc["metrics"]["engine.codegen.plans_compiled"] == 1


def test_corrupted_entry_recompiles(tmp_path):
    ref, svm1 = _run(tmp_path)
    entry = svm1.engine.store.entries()[0]
    entry.write_bytes(b"not a pickle")
    got, svm2 = _run(tmp_path)
    assert np.array_equal(got, ref)
    assert svm2.engine.store.misses == 1
    # the recompiled entry was re-persisted and is valid again
    got3, svm3 = _run(tmp_path)
    assert np.array_equal(got3, ref)
    assert svm3.engine.store.hits == 1


def test_schema_and_fingerprint_mismatch_are_misses(tmp_path):
    ref, svm1 = _run(tmp_path)
    entry = svm1.engine.store.entries()[0]
    envelope = pickle.loads(entry.read_bytes())

    envelope["schema"] = SCHEMA_VERSION + 1
    entry.write_bytes(pickle.dumps(envelope))
    got, svm2 = _run(tmp_path)
    assert np.array_equal(got, ref)
    assert svm2.engine.store.misses == 1

    envelope["schema"] = SCHEMA_VERSION
    envelope["code"] = "0" * 64  # a different engine build wrote this
    entry.write_bytes(pickle.dumps(envelope))
    got, svm3 = _run(tmp_path)
    assert np.array_equal(got, ref)
    assert svm3.engine.store.misses == 1


def test_store_guards_unit(tmp_path):
    store = PlanStore(tmp_path)
    key = ("sig", 1, 2)
    store.save(key, {"payload": 42})
    assert store.load(key) == {"payload": 42}
    assert store.load(("other", 0, 0)) is None  # absent file
    assert store.misses == 1
    assert store.stats_dict()["entries"] == 1
    assert store.clear() == 1
    assert store.entries() == []


def test_store_from_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert store_from_env() is None
    svm = SVM(vlen=256, codegen="paper")
    assert svm.engine.store is None  # persistence is opt-in

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert store_from_env().root == tmp_path
    assert default_cache_dir() == tmp_path
    ref, svm1 = _run()  # no explicit cache_dir: picked up from the env
    assert svm1.engine.store is not None
    assert len(svm1.engine.store.entries()) == 1


def test_cache_cli_stats_and_clear(tmp_path, capsys):
    _run(tmp_path)
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries: 1" in out
    assert code_fingerprint()[:12] in out

    assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
    assert "removed 1 cached file(s)" in capsys.readouterr().out
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    assert "entries: 0" in capsys.readouterr().out


def test_cache_cli_reports_disabled(monkeypatch, capsys, tmp_path):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))  # keep $HOME clean
    assert main(["cache", "stats"]) == 0
    assert "persistence is disabled" in capsys.readouterr().out

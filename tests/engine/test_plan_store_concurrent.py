"""Two processes sharing one ``REPRO_CACHE_DIR`` must not corrupt the
persistent plan store (ISSUE 6 satellite).

The serving daemon makes this the normal case: a warm daemon and ad-hoc
CLI runs (or two daemons) race on the same store directory. Writes are
atomic temp-file + rename, so concurrent writers of the same plan key
settle on one valid entry; every store file must load cleanly
afterwards and results stay identical.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import numpy as np

from repro import SVM
from repro.engine.cache import PlanStore

N = 700
ROUNDS = 30


def _worker(cache_dir: str, seed: int, out_q) -> None:
    """One process: many compile-or-load rounds against the shared
    store, each a fresh SVM (cold memory cache, warm disk at best)."""
    try:
        results = []
        for i in range(ROUNDS):
            svm = SVM(vlen=256, codegen="paper", mode="fast",
                      backend="codegen", cache_dir=cache_dir)
            rng = np.random.default_rng(seed * 1000 + i)
            raw = rng.integers(0, 2**16, N, dtype=np.uint32)
            data = svm.array(raw)
            with svm.lazy() as lz:
                lz.p_add(data, 10)
                lz.p_mul(data, 3)
                lz.plus_scan(data)
            results.append(int(data.to_numpy()[-1]))
        out_q.put(("ok", seed, results))
    except BaseException as exc:  # noqa: BLE001 - ship it to the parent
        out_q.put(("error", seed, repr(exc)))


def test_two_processes_share_store_without_corruption(tmp_path):
    cache_dir = str(tmp_path / "store")
    ctx = mp.get_context("spawn")  # a real second interpreter
    out_q = ctx.Queue()
    procs = [ctx.Process(target=_worker, args=(cache_dir, seed, out_q))
             for seed in (1, 2)]
    for p in procs:
        p.start()
    outcomes = [out_q.get(timeout=600) for _ in procs]
    for p in procs:
        p.join(timeout=600)
        assert p.exitcode == 0

    assert all(status == "ok" for status, _, _ in outcomes), outcomes

    # both processes computed over the same plan family: re-running
    # sequentially against the (now warm) store must reproduce both
    for _, seed, results in outcomes:
        for i, want in enumerate(results):
            svm = SVM(vlen=256, codegen="paper", mode="fast",
                      backend="codegen", cache_dir=cache_dir)
            rng = np.random.default_rng(seed * 1000 + i)
            raw = rng.integers(0, 2**16, N, dtype=np.uint32)
            data = svm.array(raw)
            with svm.lazy() as lz:
                lz.p_add(data, 10)
                lz.p_mul(data, 3)
                lz.plus_scan(data)
            assert int(data.to_numpy()[-1]) == want

    # no double-write: exactly one entry per plan key, and every file
    # on disk is a complete, loadable pickle (no torn writes)
    store = PlanStore(cache_dir)
    entries = store.entries()
    assert len(entries) == len(set(entries)) >= 1
    files = [f for f in os.listdir(store.root)
             if not f.endswith(".tmp")]
    assert files, "store ended up empty"
    for fname in files:
        with open(os.path.join(store.root, fname), "rb") as fh:
            pickle.load(fh)  # raises on a corrupt/partial entry


def test_concurrent_writers_of_same_key_settle_on_one_entry(tmp_path):
    """Force the worst case: two processes compiling the *same* plan
    key at the same time. Atomic rename means last-writer-wins with no
    intermediate torn state visible to readers."""
    cache_dir = str(tmp_path / "store")
    ctx = mp.get_context("spawn")
    out_q = ctx.Queue()
    # identical seeds -> identical plan keys and data every round
    procs = [ctx.Process(target=_worker, args=(cache_dir, 7, out_q))
             for _ in range(2)]
    for p in procs:
        p.start()
    outcomes = [out_q.get(timeout=600) for _ in procs]
    for p in procs:
        p.join(timeout=600)
        assert p.exitcode == 0
    (s1, _, r1), (s2, _, r2) = outcomes
    assert s1 == s2 == "ok"
    assert r1 == r2                      # bit-identical results
    store = PlanStore(cache_dir)
    assert len(store.entries()) >= 1
    # and the surviving entry is actually usable
    svm = SVM(vlen=256, codegen="paper", mode="fast", backend="codegen",
              cache_dir=cache_dir)
    data = svm.array(np.arange(1, N + 1, dtype=np.uint32))
    with svm.lazy() as lz:
        lz.p_add(data, 10)
        lz.p_mul(data, 3)
        lz.plus_scan(data)
    assert data.to_numpy().dtype == np.uint32

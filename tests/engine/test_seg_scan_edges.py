"""Segmented-scan edge cases through the engine path.

``seg_scan`` captures as a structured ``SEG_SCAN`` node that the
engine replays eagerly rather than fusing — but the replay must still be
bit-identical and counter-identical to the eager call at every edge:
empty input, a single segment, every element its own segment, and a
segment boundary that lands exactly on a strip boundary, across the
full VLEN × LMUL grid (the strip length vlmax = VLEN·LMUL/SEW moves
with every grid point, which is exactly why the boundary case must be
parameterized over the grid and not hard-coded).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.rvv.types import LMUL

VLENS = (128, 256, 512, 1024)
LMULS = (1, 2, 4, 8)
SEW_BITS = 32


def _cases(vlmax):
    """(label, values, head_flags) edge cases for one grid point."""
    g = np.random.default_rng(7)

    def vals(n):
        return g.integers(0, 2**16, n, dtype=np.uint32)

    n = 2 * vlmax
    boundary = np.zeros(n, dtype=np.uint32)
    boundary[0] = 1
    boundary[vlmax] = 1  # second segment starts exactly at strip 2
    return [
        ("empty", vals(0), np.zeros(0, dtype=np.uint32)),
        ("single-segment", vals(3 * vlmax + 1),
         np.zeros(3 * vlmax + 1, dtype=np.uint32)),
        ("all-heads", vals(vlmax + 3), np.ones(vlmax + 3, dtype=np.uint32)),
        ("strip-boundary", vals(n), boundary),
    ]


def _eager(vlen, lmul, values, flags):
    svm = SVM(vlen=vlen, codegen="paper", mode="fast")
    data, fl = svm.array(values), svm.array(flags)
    svm.reset()
    svm.seg_plus_scan(data, fl, lmul=lmul)
    return svm.machine.counters.snapshot(), data.to_numpy()


def _engine(vlen, lmul, values, flags, backend):
    svm = SVM(vlen=vlen, codegen="paper", mode="fast", backend=backend)
    data, fl = svm.array(values), svm.array(flags)
    svm.reset()
    with svm.lazy() as lz:
        lz.seg_plus_scan(data, fl, lmul=lmul)
    return svm.machine.counters.snapshot(), data.to_numpy()


@pytest.mark.parametrize("vlen", VLENS)
@pytest.mark.parametrize("lmul", LMULS)
def test_seg_scan_edges_grid(vlen, lmul):
    lm = LMUL(lmul)
    vlmax = vlen * lmul // SEW_BITS
    for label, values, flags in _cases(vlmax):
        ref_snap, ref = _eager(vlen, lm, values, flags)
        for backend in ("interp", "codegen"):
            snap, got = _engine(vlen, lm, values, flags, backend)
            assert np.array_equal(ref, got), (label, vlen, lmul, backend)
            assert ref_snap.by_category == snap.by_category, (
                label, vlen, lmul, backend)


def test_seg_scan_semantics_at_boundary():
    # independent oracle for the strip-boundary case: with heads at 0
    # and vlmax, the second segment's scan must restart from zero (a
    # carry leaking across the strip boundary would add strip 1's total)
    vlen, lm = 256, LMUL.M1
    vlmax = vlen // SEW_BITS
    values = np.ones(2 * vlmax, dtype=np.uint32)
    flags = np.zeros(2 * vlmax, dtype=np.uint32)
    flags[0] = 1
    flags[vlmax] = 1
    _, got = _engine(vlen, lm, values, flags, "codegen")
    expect = np.concatenate([np.arange(1, vlmax + 1, dtype=np.uint32)] * 2)
    assert np.array_equal(got, expect)

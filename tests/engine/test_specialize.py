"""Plan specialization: cache-insert compilation must change nothing
observable — same results, same counters — while populating the bound
state the fast path and the batch runner replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.engine.capture import PlanBuilder
from repro.engine.executor import charge_group, execute
from repro.engine.fuse import GroupSpec, fuse, materialize
from repro.engine.specialize import (
    SpecializedGroup,
    group_charge_items,
    specialize_plan,
)
from repro.rvv.types import LMUL

from .conftest import PIPELINES, make_data


def _capture(svm, pipe, n, lmul=LMUL.M1, seed=0):
    data = make_data(svm, n, seed)
    lz = PlanBuilder(svm)
    pipe(lz, data, lmul)
    return lz.build()


def test_fused_for_attaches_specializations():
    svm = SVM(vlen=128, mode="fast")
    plan = _capture(svm, PIPELINES["chain_scan"], 4096)
    fused = svm.engine.fused_for(plan)
    assert fused.specialized is not None
    specs = [u for u in fused.units if isinstance(u, GroupSpec)]
    assert specs and set(fused.specialized) == set(specs)
    for spec, sg in fused.specialized.items():
        assert isinstance(sg, SpecializedGroup)
        assert sg.n == 4096
        assert sg.charge  # closed form is precomputed
        assert (sg.scan_ufunc is not None) == spec.scan


def test_charge_items_equal_charge_group():
    svm = SVM(vlen=128)
    for name in ("chain_scan", "cmp_chain", "flags", "vv_mix"):
        plan = _capture(svm, PIPELINES[name], 1000)
        fused = fuse(plan)
        for unit in fused.units:
            if not isinstance(unit, GroupSpec):
                continue
            group = materialize(plan, unit)
            probe = SVM(vlen=128)
            with probe.machine.region() as delta:
                charge_group(probe.machine, group)
            items = dict(group_charge_items(probe.machine, group))
            observed = {c: k for c, k in delta.by_category.items() if k}
            assert items == observed


@pytest.mark.parametrize("name", sorted(PIPELINES))
@pytest.mark.parametrize("mode", ["fast", "strict"])
def test_specialized_execution_identical(name, mode):
    def run(specialize: bool):
        svm = SVM(vlen=128, mode=mode)
        data = make_data(svm, 600, seed=9)
        lz = PlanBuilder(svm)
        out = PIPELINES[name](lz, data, LMUL.M1)
        plan = lz.build()
        fused = fuse(plan)
        assert fused.specialized is None
        if specialize:
            specialize_plan(plan, fused, svm.machine)
        execute(svm, plan, fused)
        return out.to_numpy(), svm.counters.snapshot().by_category

    base_out, base_counts = run(specialize=False)
    spec_out, spec_counts = run(specialize=True)
    assert np.array_equal(base_out, spec_out)
    assert base_counts == spec_counts


def test_specialization_replays_across_alpha_equivalent_plans():
    """A cached specialization must resolve buffers from the executing
    plan, not the inserting one: run two pipelines that share a
    signature but bind different buffer objects and scalars."""
    svm = SVM(vlen=128, mode="fast")

    def run_once(values, x):
        data = svm.array(values)
        with svm.lazy() as lz:
            lz.p_add(data, x)
            lz.p_mul(data, 3)
            lz.plus_scan(data)
        got = data.to_numpy()
        svm.free(data)
        return got

    vals = np.arange(4096, dtype=np.uint32)
    first = run_once(vals, 10)
    stats = svm.engine.cache.stats
    hits_before = stats.hits
    # same signature (scalar values are excluded), different buffers
    second = run_once(vals, 20)
    assert stats.hits == hits_before + 1
    expected = np.add.accumulate((vals + 20) * 3, dtype=np.uint32)
    assert np.array_equal(second, expected)
    assert not np.array_equal(first, second)

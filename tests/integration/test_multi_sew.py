"""Multi-SEW coverage: the kernels are element-width generic (SEW is
derived from the array dtype, §3.1's e<SEW> suffix), so u8/u16/u64
arrays must work in both modes with matching counts — and *different*
counts than u32 (vlmax scales with SEW)."""

import numpy as np
import pytest

from repro import SVM

DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64]


@pytest.mark.parametrize("dtype", DTYPES)
class TestSemanticsAcrossSEW:
    def test_p_add_wraps_at_width(self, dtype):
        svm = SVM(vlen=128, mode="strict")
        maxval = np.iinfo(dtype).max
        a = svm.array([maxval], dtype=dtype)
        svm.p_add(a, 2)
        assert a.to_numpy().tolist() == [1]

    def test_scan(self, dtype, rng):
        svm = SVM(vlen=128, mode="strict")
        hi = min(int(np.iinfo(dtype).max), 50)
        data = rng.integers(0, hi, 37).astype(dtype)
        a = svm.array(data, dtype=dtype)
        svm.plus_scan(a)
        expect = np.cumsum(data, dtype=dtype)
        assert np.array_equal(a.to_numpy(), expect)

    def test_seg_scan(self, dtype, rng):
        svm = SVM(vlen=128, mode="strict")
        data = rng.integers(0, 40, 29).astype(dtype)
        flags = (rng.random(29) < 0.3).astype(dtype)
        a, f = svm.array(data, dtype=dtype), svm.array(flags, dtype=dtype)
        svm.seg_plus_scan(a, f)
        from repro.scalar.kernels import segmented_cumsum
        assert np.array_equal(a.to_numpy(), segmented_cumsum(data, flags))

    def test_strict_fast_parity(self, dtype, rng):
        data = rng.integers(0, 100, 53).astype(dtype)
        results = []
        for mode in ("strict", "fast"):
            svm = SVM(vlen=256, codegen="paper", mode=mode)
            a = svm.array(data, dtype=dtype)
            svm.reset()
            svm.plus_scan(a)
            results.append((a.to_numpy().tolist(), svm.counters.as_dict()))
        assert results[0] == results[1]


class TestSEWChangesStripCount:
    def test_vlmax_scales_with_width(self):
        """At VLEN=128: 16 u8 lanes vs 2 u64 lanes — an 8x strip-count
        difference for the same element count."""
        counts = {}
        for dtype in (np.uint8, np.uint64):
            svm = SVM(vlen=128, mode="strict", codegen="paper")
            a = svm.array(np.zeros(32, dtype=dtype), dtype=dtype)
            svm.reset()
            svm.p_add(a, 1)
            counts[dtype] = svm.instructions
        # u8: 2 strips; u64: 16 strips -> 9*2+9 vs 9*16+9
        assert counts[np.uint8] == 27
        assert counts[np.uint64] == 153

    def test_reduce_u64(self, rng):
        svm = SVM(vlen=128, mode="strict")
        data = rng.integers(0, 2**60, 11).astype(np.uint64)
        total = svm.reduce(svm.array(data, dtype=np.uint64), "plus")
        assert total == int(data.sum(dtype=np.uint64))

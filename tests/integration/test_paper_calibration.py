"""Calibration pins: the exact paper values the model reproduces.

These cells are *exact* reproductions (0 relative error); any change to
the kernels, the codegen constants, or the spill model that moves them
breaks the published EXPERIMENTS.md and must be deliberate.
"""

import pytest

from repro.tune import measure_kernel
from repro.rvv.types import LMUL

# (kernel, n, vlen, lmul, paper value) — exact cells only
EXACT_CELLS = [
    # Table 2: p_add at VLEN=1024 (N >= 10^3; the N=100 row is the
    # paper's own anomaly)
    ("p_add", 10**3, 1024, 1, 297),
    ("p_add", 10**4, 1024, 1, 2826),
    ("p_add", 10**5, 1024, 1, 28134),
    ("p_add", 10**6, 1024, 1, 281259),
    # Table 3: plus-scan (exact at N >= 10^5)
    ("plus_scan", 10**5, 1024, 1, 262531),
    ("plus_scan", 10**6, 1024, 1, 2625031),
    # Table 4: segmented plus-scan — exact at every N
    ("seg_plus_scan", 10**2, 1024, 1, 331),
    ("seg_plus_scan", 10**3, 1024, 1, 2639),
    ("seg_plus_scan", 10**4, 1024, 1, 25693),
    ("seg_plus_scan", 10**5, 1024, 1, 256289),
    ("seg_plus_scan", 10**6, 1024, 1, 2562539),
    # Table 5: LMUL=4 column — exact at every N
    ("seg_plus_scan", 10**2, 1024, 4, 145),
    ("seg_plus_scan", 10**3, 1024, 4, 887),
    ("seg_plus_scan", 10**4, 1024, 4, 8377),
    ("seg_plus_scan", 10**5, 1024, 4, 82907),
    ("seg_plus_scan", 10**6, 1024, 4, 828205),
    # Table 7: segmented scan across VLEN at N = 10^4 — exact
    ("seg_plus_scan", 10**4, 128, 1, 115039),
    ("seg_plus_scan", 10**4, 256, 1, 72539),
    ("seg_plus_scan", 10**4, 512, 1, 43789),
]


@pytest.mark.parametrize("kernel,n,vlen,lmul,paper", EXACT_CELLS)
def test_exact_cell(kernel, n, vlen, lmul, paper):
    got = measure_kernel(kernel, n, vlen, LMUL(lmul), codegen="paper")
    assert got.instructions == paper


# Table 5's LMUL=8 column: the spill model is fitted, not exact — pin
# the tolerance it achieves so regressions surface.
SPILL_CELLS = [
    (10**2, 2090, 0.035),
    (10**3, 2668, 0.025),
    (10**4, 9284, 0.008),
    (10**5, 74650, 0.001),
    (10**6, 728586, 0.0002),
]


@pytest.mark.parametrize("n,paper,tol", SPILL_CELLS)
def test_lmul8_spill_tolerance(n, paper, tol):
    got = measure_kernel("seg_plus_scan", n, 1024, LMUL.M8, codegen="paper")
    assert abs(got.instructions - paper) / paper <= tol


def test_table6_lmul2_implied_counts():
    """Table 6's LMUL=2 ratios imply ~94/strip; our LMUL=2 counts must
    match the implied values within 0.1% (the Table 5 column itself is
    corrupt — see DESIGN.md)."""
    for n, ratio in ((10**5, 0.8720338349), (10**6, 0.872330539)):
        lm1 = measure_kernel("seg_plus_scan", n, 1024, LMUL.M1, "paper").instructions
        lm2 = measure_kernel("seg_plus_scan", n, 1024, LMUL.M2, "paper").instructions
        implied = lm1 / (ratio * 2)
        assert abs(lm2 - implied) / implied < 0.001

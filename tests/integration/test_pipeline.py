"""End-to-end pipeline tests: whole workloads on one machine with all
cost models engaged, checking counter-category coherence."""

import numpy as np

from repro import SVM
from repro.algorithms import split_radix_sort
from repro.rvv.counters import Cat
from repro.scalar import GlibcMallocModel, ScalarMachine, qsort_baseline


class TestRadixSortPipeline:
    def test_table1_configuration(self):
        """The full Table 1 setup: paper codegen + glibc malloc model,
        sorting 10^4 random keys, beating the qsort baseline."""
        svm = SVM(vlen=1024, codegen="paper", mode="fast",
                  malloc_model=GlibcMallocModel())
        data = np.random.default_rng(0).integers(0, 2**32, 10**4, dtype=np.uint32)
        arr = svm.array(data)
        svm.reset()
        split_radix_sort(svm, arr)
        assert np.array_equal(arr.to_numpy(), np.sort(data))

        sm = ScalarMachine()
        qsort_baseline(sm, data)
        assert sm.total / svm.instructions > 3  # paper: 4.32x

    def test_counter_categories_coherent(self):
        svm = SVM(vlen=1024, codegen="paper", mode="fast",
                  malloc_model=GlibcMallocModel())
        arr = svm.array(np.random.default_rng(1).integers(
            0, 2**32, 2000, dtype=np.uint32))
        svm.reset()
        split_radix_sort(svm, arr)
        c = svm.counters
        # every category the sort exercises is populated
        assert c[Cat.VCONFIG] > 0
        assert c[Cat.VMEM] > 0
        assert c[Cat.VMEM_INDEXED] > 0   # permute's vsuxei
        assert c[Cat.VMASK] > 0          # enumerate's viota/vcpop
        assert c[Cat.VARITH] > 0
        assert c[Cat.SCALAR] > 0
        assert c[Cat.ALLOC] > 0          # per-split mallocs
        assert c[Cat.SPILL] == 0         # LMUL=1 never spills
        # rollups sum to the total
        assert c.vector_total + c.scalar_total + c.spill_total + c[Cat.ALLOC] == c.total

    def test_mmap_jump_visible_in_alloc_category(self):
        """Crossing the mmap threshold must grow ALLOC super-linearly
        (the Table 1 anomaly isolated to its category)."""
        def alloc_count(n):
            svm = SVM(vlen=1024, codegen="paper", mode="fast",
                      malloc_model=GlibcMallocModel())
            arr = svm.array(np.zeros(n, dtype=np.uint32))
            svm.reset()
            split_radix_sort(svm, arr)
            return svm.counters[Cat.ALLOC] / n

        small = alloc_count(10**4)   # 40 KB buffers: bin fast path
        large = alloc_count(10**5)   # 400 KB buffers: mmap + faults
        assert large > 10 * small


class TestMultipleKernelsOneMachine:
    def test_counters_accumulate_across_calls(self):
        svm = SVM(vlen=256, codegen="paper")
        a = svm.array(np.arange(100, dtype=np.uint32))
        svm.p_add(a, 1)
        after_first = svm.instructions
        svm.plus_scan(a)
        assert svm.instructions > after_first

    def test_independent_machines_isolated(self):
        svm1 = SVM(vlen=256)
        svm2 = SVM(vlen=256)
        a = svm1.array([1, 2, 3])
        svm1.p_add(a, 1)
        assert svm2.instructions == 0

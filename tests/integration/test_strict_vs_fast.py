"""The fast-path contract: for every primitive, the NumPy fast path
must produce bit-identical results AND identical per-category dynamic
instruction counts to the strict intrinsic-by-intrinsic simulation —
across sizes, VLENs, LMULs, operators, and codegen presets.

This is what makes the closed-form counts trustworthy at N = 10^6
where strict simulation is impractically slow.
"""

import numpy as np
import pytest

from repro import SVM
from repro.rvv.types import LMUL

SIZES = [0, 1, 3, 4, 5, 31, 32, 33, 100]
CONFIGS = [
    (128, LMUL.M1, "ideal"),
    (128, LMUL.M2, "paper"),
    (256, LMUL.M1, "paper"),
    (1024, LMUL.M8, "paper"),  # the spilling configuration
]


def _pair(vlen, codegen):
    return (SVM(vlen=vlen, codegen=codegen, mode="strict"),
            SVM(vlen=vlen, codegen=codegen, mode="fast"))


def _assert_same(strict_svm, fast_svm, strict_arrs, fast_arrs):
    assert strict_svm.counters.as_dict() == fast_svm.counters.as_dict()
    for s_arr, f_arr in zip(strict_arrs, fast_arrs):
        assert np.array_equal(s_arr.to_numpy(), f_arr.to_numpy())


def _run_both(vlen, codegen, n, seed, fn):
    s_svm, f_svm = _pair(vlen, codegen)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2**32, n, dtype=np.uint32)
    flags = (rng.random(n) < 0.2).astype(np.uint32)
    outs = []
    for svm in (s_svm, f_svm):
        a = svm.array(data)
        f = svm.array(flags)
        svm.reset()
        extra = fn(svm, a, f)
        outs.append((svm, [a, f] + list(extra or [])))
    (_s, s_arrs), (_f, f_arrs) = outs
    _assert_same(_s, _f, s_arrs, f_arrs)


@pytest.mark.parametrize("vlen,lmul,codegen", CONFIGS)
@pytest.mark.parametrize("n", SIZES)
class TestPrimitiveParity:
    def test_p_add_vx(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 1,
                  lambda svm, a, f: svm.p_add(a, 77, lmul=lmul))

    def test_p_mul_vv(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 2,
                  lambda svm, a, f: svm.p_mul(a, f, lmul=lmul))

    def test_p_select(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            b = svm.copy(a)
            svm.p_select(f, b, a, lmul=lmul)
            return [b]
        _run_both(vlen, codegen, n, 3, fn)

    def test_get_flags(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 4,
                  lambda svm, a, f: [svm.get_flags(a, 7, lmul=lmul)])

    def test_scan_inclusive(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 5,
                  lambda svm, a, f: svm.plus_scan(a, lmul=lmul))

    def test_scan_exclusive_min(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 6,
                  lambda svm, a, f: svm.scan(a, "min", inclusive=False, lmul=lmul))

    def test_seg_scan_inclusive(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 7,
                  lambda svm, a, f: svm.seg_plus_scan(a, f, lmul=lmul))

    def test_seg_scan_exclusive_max(self, vlen, lmul, codegen, n):
        _run_both(vlen, codegen, n, 8,
                  lambda svm, a, f: svm.seg_scan(a, f, "max", inclusive=False,
                                                 lmul=lmul))

    def test_enumerate(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            out, count = svm.enumerate(f, set_bit=True, lmul=lmul)
            svm.machine.counters.add  # no-op; counts already compared
            return [out]
        _run_both(vlen, codegen, n, 9, fn)

    def test_permute(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            perm = svm.array(np.random.default_rng(10).permutation(n).astype(np.uint32))
            svm.reset()
            return [svm.permute(a, perm, lmul=lmul)]
        _run_both(vlen, codegen, n, 10, fn)

    def test_pack(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            out, kept = svm.pack(a, f, lmul=lmul)
            return [out]
        _run_both(vlen, codegen, n, 11, fn)

    def test_cmp_and_reduce(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            lt = svm.p_lt(a, 2**31, lmul=lmul)
            total = svm.reduce(lt, "plus", lmul=lmul)
            return [lt]
        _run_both(vlen, codegen, n, 12, fn)

    def test_index_shift_reverse(self, vlen, lmul, codegen, n):
        def fn(svm, a, f):
            idx = svm.index_array(n, lmul=lmul)
            sh = svm.shift1up(a, 5, lmul=lmul)
            rev = svm.reverse(a, lmul=lmul)
            return [idx, sh, rev]
        _run_both(vlen, codegen, n, 13, fn)


class TestCompositeParity:
    """Whole algorithms must also agree exactly between modes."""

    @pytest.mark.parametrize("n", [16, 100])
    def test_split(self, n):
        _run_both(1024, "paper", n, 20,
                  lambda svm, a, f: [svm.split(a, f)[0]])

    @pytest.mark.parametrize("n", [16, 70])
    def test_radix_sort(self, n):
        from repro.algorithms import split_radix_sort
        _run_both(256, "paper", n, 21,
                  lambda svm, a, f: split_radix_sort(svm, a, bits=8))

    def test_flat_quicksort(self):
        from repro.algorithms import flat_quicksort

        def fn(svm, a, f):
            flat_quicksort(svm, a)

        _run_both(256, "paper", 40, 22, fn)

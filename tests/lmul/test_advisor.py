"""Tests for the LMUL advisor: predictions must equal measurement
exactly, and the pick must be the sweep argmin."""

import pytest

from repro.tune import choose_lmul, measure_kernel, predict_scan_count
from repro.rvv.types import LMUL


class TestPredictionExactness:
    @pytest.mark.parametrize("kernel", ["plus_scan", "seg_plus_scan"])
    @pytest.mark.parametrize("n", [1, 37, 100, 1000, 4096])
    @pytest.mark.parametrize("lmul", [1, 2, 4, 8])
    def test_equals_measurement(self, kernel, n, lmul):
        pred = predict_scan_count(kernel, n, 1024, LMUL(lmul))
        meas = measure_kernel(kernel, n, 1024, LMUL(lmul))
        assert pred.count == meas.instructions

    @pytest.mark.parametrize("vlen", [128, 256, 512, 1024])
    def test_across_vlen(self, vlen):
        pred = predict_scan_count("seg_plus_scan", 500, vlen, LMUL.M2)
        meas = measure_kernel("seg_plus_scan", 500, vlen, LMUL.M2)
        assert pred.count == meas.instructions

    def test_ideal_preset_too(self):
        pred = predict_scan_count("seg_plus_scan", 777, 1024, LMUL.M8, "ideal")
        meas = measure_kernel("seg_plus_scan", 777, 1024, LMUL.M8, "ideal")
        assert pred.count == meas.instructions


class TestChoice:
    def test_matches_sweep_argmin(self):
        for n in (100, 5000, 200000):
            counts = {
                lm: measure_kernel("seg_plus_scan", n, 1024, LMUL(lm)).instructions
                for lm in (1, 2, 4, 8)
            }
            choice = choose_lmul("seg_plus_scan", n, 1024)
            assert choice.count == min(counts.values())

    def test_paper_crossover(self):
        """Table 5's shape: LMUL=4 wins at small N (LMUL=8 spills),
        LMUL=8 wins at large N (strip savings amortize the spills)."""
        assert int(choose_lmul("seg_plus_scan", 100, 1024).lmul) == 4
        assert int(choose_lmul("seg_plus_scan", 10**6, 1024).lmul) == 8

    def test_spill_report(self):
        pred = predict_scan_count("seg_plus_scan", 1000, 1024, LMUL.M8)
        assert pred.has_spills
        assert "flags_slideup" in pred.spilled_values
        assert not predict_scan_count("seg_plus_scan", 1000, 1024, LMUL.M4).has_spills

    def test_candidate_restriction(self):
        choice = choose_lmul("seg_plus_scan", 10**6, 1024,
                             candidates=(LMUL.M1, LMUL.M2))
        assert int(choice.lmul) == 2

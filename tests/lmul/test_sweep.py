"""Tests for the sweep helpers behind Tables 5-7."""

import pytest

from repro.tune import measure_kernel, sweep_lmul, sweep_vlen
from repro.rvv.types import LMUL


class TestMeasureKernel:
    def test_point_fields(self):
        p = measure_kernel("p_add", 100, 256, LMUL.M2)
        assert (p.kernel, p.n, p.vlen, p.lmul) == ("p_add", 100, 256, LMUL.M2)
        assert p.instructions > 0

    def test_deterministic(self):
        a = measure_kernel("seg_plus_scan", 500, 512)
        b = measure_kernel("seg_plus_scan", 500, 512)
        assert a.instructions == b.instructions

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            measure_kernel("fft", 10, 128)


class TestSweeps:
    def test_lmul_grid_shape(self):
        points = sweep_lmul("seg_plus_scan", sizes=(100, 1000))
        assert len(points) == 8
        assert {int(p.lmul) for p in points} == {1, 2, 4, 8}

    def test_vlen_line(self):
        points = sweep_vlen("p_add", 10**4)
        assert [p.vlen for p in points] == [128, 256, 512, 1024]
        # elementwise work scales down linearly with VLEN (Figure 5)
        counts = [p.instructions for p in points]
        assert counts[0] > counts[1] > counts[2] > counts[3]
        assert counts[0] / counts[3] == pytest.approx(8, rel=0.01)

    def test_seg_scan_sublinear(self):
        points = sweep_vlen("seg_plus_scan", 10**4)
        counts = {p.vlen: p.instructions for p in points}
        ratio = counts[128] / counts[1024]
        assert 3.5 < ratio < 5.5  # Figure 5: ~4.5x, far below the ideal 8x

"""tools/bench_compare.py — the CI perf-regression gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
import bench_compare  # noqa: E402


BASE = {
    "pipeline": "chain",
    "n": 1000,
    "grid": [
        {"vlen": 128, "eager": 1000, "fused": 400, "saving_pct": 60.0},
        {"vlen": 256, "eager": 500, "fused": 210, "saving_pct": 58.0},
    ],
}


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


class TestCompare:
    def test_identical_passes(self):
        assert bench_compare.compare(BASE, json.loads(json.dumps(BASE))) == []

    def test_count_drift_fails_at_zero_tolerance(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["grid"][1]["fused"] = 211
        failures = bench_compare.compare(BASE, fresh, tolerance=0.0)
        assert len(failures) == 1
        assert "grid[1].fused" in failures[0]

    def test_tolerance_allows_small_drift(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["grid"][0]["eager"] = 1009  # 0.9% drift
        assert bench_compare.compare(BASE, fresh, tolerance=0.01) == []
        assert bench_compare.compare(BASE, fresh, tolerance=0.001) != []

    def test_missing_key_fails(self):
        fresh = json.loads(json.dumps(BASE))
        del fresh["grid"][0]["fused"]
        failures = bench_compare.compare(BASE, fresh)
        assert any("missing" in f for f in failures)

    def test_length_mismatch_fails(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["grid"].pop()
        failures = bench_compare.compare(BASE, fresh)
        assert any("length" in f for f in failures)

    def test_string_leaves_compared_exactly(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["pipeline"] = "other"
        failures = bench_compare.compare(BASE, fresh, tolerance=0.5)
        assert any("pipeline" in f for f in failures)

    def test_type_mismatch_fails(self):
        failures = bench_compare.compare({"a": 1}, {"a": "one"})
        assert failures and "expected number" in failures[0]


class TestMain:
    def test_match_exits_zero(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", BASE)
        fresh = _write(tmp_path, "fresh.json", BASE)
        assert bench_compare.main([base, fresh]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        doc = json.loads(json.dumps(BASE))
        doc["grid"][0]["fused"] = 9999
        base = _write(tmp_path, "base.json", BASE)
        fresh = _write(tmp_path, "fresh.json", doc)
        assert bench_compare.main([base, fresh]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "1 regression(s)" in err

    def test_tolerance_flag(self, tmp_path):
        doc = json.loads(json.dumps(BASE))
        doc["grid"][0]["eager"] = 1009
        base = _write(tmp_path, "base.json", BASE)
        fresh = _write(tmp_path, "fresh.json", doc)
        assert bench_compare.main([base, fresh, "--tolerance", "0.01"]) == 0
        assert bench_compare.main([base, fresh]) == 1

    def test_negative_tolerance_rejected(self, tmp_path):
        base = _write(tmp_path, "base.json", BASE)
        with pytest.raises(SystemExit) as exc:
            bench_compare.main([base, base, "--tolerance", "-1"])
        assert exc.value.code == 2

    def test_committed_baseline_self_compares(self, capsys):
        repo = Path(__file__).resolve().parents[2]
        baseline = str(repo / "BENCH_fusion.json")
        assert bench_compare.main([baseline, baseline, "--tolerance", "0"]) == 0

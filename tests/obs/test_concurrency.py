"""Observability under threads.

The serving daemon's worker pool mutates one shared
:class:`~repro.obs.metrics.MetricsRegistry` from several threads and
runs one :class:`~repro.obs.spans.ProfileCollector` per worker machine
concurrently. These tests gate the two contracts that setup relies on:

* **Exact metrics under contention.** ``Counter.inc`` /
  ``Histogram.observe`` / ``Summary.observe`` are read-modify-write
  sequences; without the per-metric lock a lost update silently
  undercounts. The hammer tests below shrink the interpreter's thread
  switch interval so an unlocked implementation has every opportunity
  to expose the race (they fail against it whenever a race is
  observable), and require *exact* totals against the locked one.

* **Span attribution per collector.** Each collector is confined to
  its own machine/thread, and its finished tree must keep the
  ``(self)``-cost invariant — every span's delta minus its children's
  deltas is non-negative in every category, and the exporters'
  synthetic ``(self)`` child makes rendered children sum exactly —
  even while sibling collectors run concurrently.
"""

import sys
import threading

import numpy as np

from repro.obs.export import render_tree, to_chrome_trace, to_json
from repro.obs.metrics import MetricsRegistry
from repro.svm.context import SVM

THREADS = 8
ITERS = 2_000


def _hammer(fn, threads=THREADS):
    """Run ``fn(thread_index)`` on every thread at once, with a tiny
    switch interval so interleavings actually happen mid-update."""
    start = threading.Barrier(threads)

    def body(i):
        start.wait()
        fn(i)

    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        ts = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
    finally:
        sys.setswitchinterval(old)


class TestContendedUpdates:
    def test_counter_increments_are_exact(self):
        r = MetricsRegistry()
        _hammer(lambda i: [r.counter("c").inc() for _ in range(ITERS)])
        assert r.counter("c").value == THREADS * ITERS

    def test_labeled_counter_families_are_exact(self):
        r = MetricsRegistry()

        def body(i):
            # two threads per label set, so label-mates contend
            c = r.counter("c", worker=str(i % (THREADS // 2)))
            for _ in range(ITERS):
                c.inc()

        _hammer(body)
        for labels, c in r.samples("c"):
            assert c.value == 2 * ITERS, labels

    def test_histogram_observations_are_exact(self):
        r = MetricsRegistry()
        _hammer(lambda i: [r.histogram("h").observe(i + 1)
                           for _ in range(ITERS)])
        h = r.histogram("h")
        assert h.count == THREADS * ITERS
        assert h.total == ITERS * sum(range(1, THREADS + 1))
        assert h.by_value == {i + 1: ITERS for i in range(THREADS)}

    def test_summary_count_and_sum_are_exact(self):
        r = MetricsRegistry()
        _hammer(lambda i: [r.summary("s").observe(float(i))
                           for _ in range(ITERS)])
        s = r.summary("s")
        assert s.count == THREADS * ITERS
        assert s.total == ITERS * sum(range(THREADS))
        assert (s.min, s.max) == (0.0, float(THREADS - 1))

    def test_get_or_create_race_yields_one_object(self):
        r = MetricsRegistry()
        seen = [None] * THREADS

        def body(i):
            seen[i] = r.counter("one", k="v")
            seen[i].inc()

        _hammer(body)
        assert len({id(c) for c in seen}) == 1
        assert r.counter("one", k="v").value == THREADS
        assert len(r) == 1


def _self_invariant(span):
    """Every category of every span's (self) cost is non-negative."""
    for s in span.walk():
        if s.delta is None:
            continue
        own = s.self_delta().by_category
        for cat, n in own.items():
            assert n >= 0, (s.name, cat, n)


def _children_sum_exactly(doc):
    """In the JSON export, children (incl. the synthetic ``(self)``
    child) sum to the parent, category by category."""
    kids = doc.get("children")
    if not kids:
        return
    summed: dict = {}
    for kid in kids:
        for cat, n in kid["by_category"].items():
            summed[cat] = summed.get(cat, 0) + n
    assert summed == doc["by_category"], doc["name"]
    for kid in kids:
        _children_sum_exactly(kid)


class TestMultiThreadedCollectors:
    def test_self_cost_invariant_and_exporters(self):
        results = [None] * 4
        errors = []

        def body(i):
            try:
                svm = SVM(vlen=256, profile=True)
                data = svm.array(np.arange(1, 200 + 50 * i, dtype=np.uint32))
                svm.plus_scan(data)
                with svm.lazy() as lz:
                    lz.p_add(data, 3)
                    lz.scan(data)
                svm.free(data)
                results[i] = svm
            except BaseException as exc:  # noqa: BLE001 - surface in main
                errors.append(exc)

        ts = [threading.Thread(target=body, args=(i,)) for i in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors, errors

        for svm in results:
            col = svm.profiler
            root = col.finish()
            assert root.total > 0
            _self_invariant(root)
            # all three exporters work on a tree built in another
            # thread, and the JSON view's (self) children close the sum
            doc = to_json(col)
            _children_sum_exactly(doc["profile"])
            text = render_tree(col)
            assert "dynamic instructions" in text
            trace = to_chrome_trace(col)
            spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
            assert len(spans) == sum(1 for _ in root.walk())

    def test_collectors_do_not_cross_contaminate(self):
        sizes = (100, 4000)
        svms = [None, None]

        def body(i):
            svm = SVM(vlen=256, profile=True)
            data = svm.array(np.arange(1, sizes[i] + 1, dtype=np.uint32))
            svm.plus_scan(data)
            svm.free(data)
            svms[i] = svm

        ts = [threading.Thread(target=body, args=(i,)) for i in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        totals = [svm.profiler.finish().total for svm in svms]
        # span totals equal each machine's own counters: nothing leaked
        # from the sibling collector running concurrently
        for svm, total in zip(svms, totals):
            assert total == svm.instructions
        assert totals[0] < totals[1]

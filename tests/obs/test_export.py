"""Exporter tests: tree golden output, JSON structure, Chrome-trace
schema — all on a deterministic fake clock."""

import json

from repro.obs.export import render_tree, to_chrome_trace, to_json
from repro.obs.spans import ProfileCollector
from repro.rvv.counters import Cat
from repro.rvv.machine import RVVMachine


class FakeClock:
    """Monotonic clock advancing 1 ms per reading — deterministic wall
    times and timestamps for golden assertions."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 0.001
        return self.t


def _sample_collector():
    m = RVVMachine(vlen=256)
    col = ProfileCollector(m, clock=FakeClock())
    m.collector = col
    with col.span("alpha", n=8):
        m.count(Cat.VMEM, 2)
        with col.span("beta"):
            m.count(Cat.VARITH, 3)
        m.count(Cat.SCALAR, 5)
    with col.span("gamma"):
        m.count(Cat.VPERM, 1)
    col.event("cache.hit", size=1)
    col.finish()
    return m, col


class TestRenderTree:
    def test_golden_tree(self):
        _, col = _sample_collector()
        # FakeClock: every reading advances 1 ms; the exact wall values
        # follow from the number of clock reads, so the output is stable
        text = render_tree(col)
        lines = text.splitlines()
        assert lines[0].startswith("profile: VLEN=256 codegen=ideal — "
                                   "11 dynamic instructions")
        assert lines[1] == ("├─ alpha(n=8)  10 instr   90.9%  "
                            "[scalar 50.0% · varith 30.0% · vmem 20.0%]")
        assert lines[2] == ("│  ├─ beta  3 instr   30.0%  [varith 100.0%]")
        assert lines[3] == ("│  └─ (self)  7 instr   70.0%  "
                            "[scalar 71.4% · vmem 28.6%]")
        assert lines[4] == "└─ gamma  1 instr    9.1%  [vperm 100.0%]"

    def test_max_depth_clips(self):
        _, col = _sample_collector()
        text = render_tree(col, max_depth=1)
        assert "beta" not in text
        assert "below --max-depth" in text

    def test_error_annotation(self):
        m = RVVMachine(vlen=256)
        col = ProfileCollector(m, clock=FakeClock())
        m.collector = col
        try:
            with col.span("bad"):
                raise KeyError("x")
        except KeyError:
            pass
        text = render_tree(col)
        assert "!! raised KeyError" in text


class TestToJson:
    def test_structure(self):
        _, col = _sample_collector()
        doc = to_json(col)
        assert doc["machine"] == {"vlen": 256, "codegen": "ideal"}
        root = doc["profile"]
        assert root["name"] == "profile"
        assert root["total"] == 11
        assert [c["name"] for c in root["children"]] == ["alpha", "gamma", "(self)"]
        assert doc["events"][0]["name"] == "cache.hit"
        assert doc["events"][0]["meta"] == {"size": 1}
        assert json.loads(json.dumps(doc)) == doc  # serializable round-trip

    def test_children_sum_exactly_to_parent(self):
        _, col = _sample_collector()
        doc = to_json(col)

        def check(span):
            kids = span.get("children")
            if not kids:
                return
            summed: dict = {}
            for child in kids:
                for cat, n in child["by_category"].items():
                    summed[cat] = summed.get(cat, 0) + n
            assert summed == span["by_category"], span["name"]
            assert sum(c["total"] for c in kids) == span["total"]
            for child in kids:
                check(child)

        check(doc["profile"])

    def test_self_child_non_negative(self):
        _, col = _sample_collector()
        doc = to_json(col)
        for span in _walk_json(doc["profile"]):
            if span["name"] == "(self)":
                assert span["total"] >= 0
                assert all(n >= 0 for n in span["by_category"].values())


def _walk_json(span):
    yield span
    for child in span.get("children", ()):
        yield from _walk_json(child)


class TestChromeTrace:
    def test_schema(self):
        _, col = _sample_collector()
        doc = to_chrome_trace(col)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["vlen"] == 256
        assert doc["otherData"]["total_instructions"] == 11
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "C", "i"}
        for e in doc["traceEvents"]:
            # the Trace Event Format's required keys, per phase
            assert {"ph", "name", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
                assert "instructions" in e["args"]
            if e["ph"] == "i":
                assert e["s"] in ("t", "p", "g")
        assert json.loads(json.dumps(doc)) == doc

    def test_span_events_nest_within_parent_duration(self):
        _, col = _sample_collector()
        doc = to_chrome_trace(col)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        alpha, beta = by_name["alpha"], by_name["beta"]
        assert alpha["ts"] <= beta["ts"]
        assert beta["ts"] + beta["dur"] <= alpha["ts"] + alpha["dur"]

    def test_meta_lands_in_args(self):
        _, col = _sample_collector()
        doc = to_chrome_trace(col)
        alpha = next(e for e in doc["traceEvents"]
                     if e["ph"] == "X" and e["name"] == "alpha")
        assert alpha["args"]["meta.n"] == 8

    def test_counter_track_is_cumulative(self):
        _, col = _sample_collector()
        doc = to_chrome_trace(col)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert counters[0]["name"] == "dynamic instructions"
        # root closes last with the full total
        assert max(e["args"]["total"] for e in counters) == 11

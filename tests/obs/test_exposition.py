"""Prometheus text exposition: rendering, determinism, and the strict
parser's rejection surface (the same parser the serve-smoke CI job
validates live scrapes with)."""

import math

import pytest

from repro.obs.exposition import (
    ExpositionError,
    parse_exposition,
    render_exposition,
    sanitize_name,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("serve.requests").inc(5)
    r.counter("serve.pipeline.requests", pipeline="scan", mode="auto").inc(3)
    r.counter("serve.pipeline.requests", pipeline="reverse", mode="auto").inc(2)
    r.gauge("serve.inflight").set(1)
    h = r.histogram("batch.size")
    for v in (1, 2, 2, 8):
        h.observe(v)
    s = r.summary("serve.latency_ms")
    for v in range(100):
        s.observe(float(v))
    return r


class TestRender:
    def test_roundtrip_through_strict_parser(self):
        text = render_exposition(_registry())
        doc = parse_exposition(text)
        assert doc["repro_serve_requests_total"]["type"] == "counter"
        assert doc["repro_serve_requests_total"]["samples"] \
            == [("repro_serve_requests_total", {}, 5.0)]
        labeled = doc["repro_serve_pipeline_requests_total"]["samples"]
        assert {frozenset(labels.items()): v for _, labels, v in labeled} == {
            frozenset({("pipeline", "scan"), ("mode", "auto")}): 3.0,
            frozenset({("pipeline", "reverse"), ("mode", "auto")}): 2.0,
        }
        assert doc["repro_serve_inflight"]["type"] == "gauge"

    def test_histogram_buckets_are_cumulative(self):
        text = render_exposition(_registry())
        doc = parse_exposition(text)
        buckets = {labels["le"]: v for name, labels, v
                   in doc["repro_batch_size"]["samples"]
                   if name.endswith("_bucket")}
        assert buckets == {"1": 1.0, "2": 3.0, "8": 4.0, "+Inf": 4.0}
        by_name = {name: v for name, labels, v
                   in doc["repro_batch_size"]["samples"]
                   if not labels}
        assert by_name["repro_batch_size_sum"] == 13.0
        assert by_name["repro_batch_size_count"] == 4.0

    def test_summary_quantiles(self):
        text = render_exposition(_registry())
        doc = parse_exposition(text)
        quantiles = {labels["quantile"]: v for name, labels, v
                     in doc["repro_serve_latency_ms"]["samples"]
                     if "quantile" in labels}
        assert set(quantiles) == {"0.5", "0.9", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.9"] <= quantiles["0.99"]

    def test_rendering_is_deterministic(self):
        assert render_exposition(_registry()) \
            == render_exposition(_registry())

    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry()) == ""
        assert parse_exposition("") == {}

    def test_sanitize_name(self):
        assert sanitize_name("serve.latency_ms") == "repro_serve_latency_ms"
        assert sanitize_name("repro_x") == "repro_x"

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.counter("c", note='say "hi"\nok\\done').inc()
        text = render_exposition(r)
        doc = parse_exposition(text)
        (_, labels, value), = doc["repro_c_total"]["samples"]
        assert labels["note"] == 'say "hi"\nok\\done'
        assert value == 1.0


class TestStrictParser:
    def _ok(self, text):
        return parse_exposition(text)

    def test_sample_without_type_rejected(self):
        with pytest.raises(ExpositionError, match="no preceding # TYPE"):
            self._ok("repro_x 1\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(ExpositionError, match="duplicate sample"):
            self._ok("# TYPE repro_x_total counter\n"
                     "repro_x_total 1\nrepro_x_total 2\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            self._ok("# TYPE repro_x counter\n# TYPE repro_x gauge\n")

    def test_bad_type_rejected(self):
        with pytest.raises(ExpositionError, match="bad type"):
            self._ok("# TYPE repro_x countr\n")

    def test_unquoted_label_value_rejected(self):
        with pytest.raises(ExpositionError, match="malformed"):
            self._ok("# TYPE repro_x gauge\nrepro_x{a=1} 2\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(ExpositionError, match="duplicate label"):
            self._ok('# TYPE repro_x gauge\nrepro_x{a="1",a="2"} 2\n')

    def test_bad_value_rejected(self):
        with pytest.raises(ExpositionError, match="bad sample value"):
            self._ok("# TYPE repro_x gauge\nrepro_x one\n")

    def test_negative_counter_rejected(self):
        with pytest.raises(ExpositionError, match="negative counter"):
            self._ok("# TYPE repro_x counter\nrepro_x -1\n")

    def test_stray_whitespace_rejected(self):
        with pytest.raises(ExpositionError, match="stray whitespace"):
            self._ok("# TYPE repro_x gauge\nrepro_x 1 \n")

    def test_suffix_on_wrong_type_rejected(self):
        with pytest.raises(ExpositionError, match="suffix invalid"):
            self._ok("# TYPE repro_x counter\nrepro_x_sum 1\n")

    def test_bucket_without_le_rejected(self):
        with pytest.raises(ExpositionError, match="without le"):
            self._ok("# TYPE repro_h histogram\nrepro_h_bucket 1\n")

    def test_non_monotone_histogram_rejected(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n'
                'repro_h_bucket{le="2"} 3\n'
                'repro_h_bucket{le="+Inf"} 5\n')
        with pytest.raises(ExpositionError, match="non-monotone"):
            self._ok(text)

    def test_missing_inf_bucket_rejected(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 5\n')
        with pytest.raises(ExpositionError, match="missing \\+Inf"):
            self._ok(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_count 6\n")
        with pytest.raises(ExpositionError, match="!= _count"):
            self._ok(text)

    def test_quantile_out_of_range_rejected(self):
        text = ("# TYPE repro_s summary\n"
                'repro_s{quantile="1.5"} 2\n')
        with pytest.raises(ExpositionError, match="outside"):
            self._ok(text)

    def test_inf_and_nan_values_parse(self):
        doc = self._ok("# TYPE repro_g gauge\n"
                       'repro_g{k="a"} +Inf\n'
                       'repro_g{k="b"} -Inf\n'
                       'repro_g{k="c"} NaN\n')
        values = [v for _, _, v in doc["repro_g"]["samples"]]
        assert values[0] == math.inf and values[1] == -math.inf
        assert math.isnan(values[2])

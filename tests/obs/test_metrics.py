"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    freeze_labels,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_sets(self):
        g = Gauge("x")
        g.set(3)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (8, 8, 8, 3):
            h.observe(v)
        assert h.count == 4
        assert h.total == 27
        assert h.min == 3
        assert h.max == 8
        assert h.mean == pytest.approx(27 / 4)
        assert h.by_value == {8: 3, 3: 1}

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_distinct_value_cap(self):
        h = Histogram("h", max_distinct=4)
        for v in range(10):
            h.observe(v)
        # summary stats stay exact, the value map stops growing
        assert h.count == 10
        assert h.min == 0 and h.max == 9
        assert len(h.by_value) == 4

    def test_as_dict(self):
        h = Histogram("h")
        h.observe(2)
        h.observe(2)
        d = h.as_dict()
        assert d["count"] == 2
        assert d["sum"] == 4
        assert d["by_value"] == {"2": 2}


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        c = r.counter("a.b")
        assert r.counter("a.b") is c
        assert "a.b" in r
        assert len(r) == 1

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            r.gauge("x")

    def test_as_dict_shapes(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(0.5)
        r.histogram("h").observe(7)
        d = r.as_dict()
        assert d["c"] == 2
        assert d["g"] == 0.5
        assert d["h"]["count"] == 1

    def test_render(self):
        r = MetricsRegistry()
        assert r.render() == "metrics: (none recorded)"
        r.counter("hits").inc(3)
        text = r.render()
        assert text.startswith("metrics:")
        assert "hits" in text and "3" in text


class TestLabels:
    def test_freeze_labels_is_order_independent(self):
        assert freeze_labels({"a": 1, "b": "x"}) \
            == freeze_labels({"b": "x", "a": 1}) \
            == (("a", "1"), ("b", "x"))

    def test_label_sets_are_distinct_metrics_of_one_family(self):
        r = MetricsRegistry()
        scan = r.counter("serve.requests", pipeline="scan")
        rev = r.counter("serve.requests", pipeline="reverse")
        assert scan is not rev
        assert r.counter("serve.requests", pipeline="scan") is scan
        scan.inc(3)
        rev.inc()
        assert {tuple(sorted(labels.items())): m.value
                for labels, m in r.samples("serve.requests")} \
            == {(("pipeline", "reverse"),): 1, (("pipeline", "scan"),): 3}

    def test_one_type_per_family_across_label_sets(self):
        r = MetricsRegistry()
        r.counter("x", pipeline="scan")
        with pytest.raises(TypeError, match="is a Counter"):
            r.gauge("x", pipeline="reverse")
        with pytest.raises(TypeError, match="is a Counter"):
            r.histogram("x")

    def test_as_dict_and_render_show_label_suffix(self):
        r = MetricsRegistry()
        r.counter("c", mode="auto", pipeline="scan").inc(2)
        d = r.as_dict()
        assert d == {"c{mode=auto,pipeline=scan}": 2}
        assert "c{mode=auto,pipeline=scan}" in r.render()

    def test_families_iteration_order_is_deterministic(self):
        r = MetricsRegistry()
        r.gauge("b")
        r.counter("a", k="2")
        r.counter("a", k="1")
        fams = r.families()
        assert [(name, cls.__name__) for name, cls, _ in fams] \
            == [("a", "Counter"), ("b", "Gauge")]
        assert [labels for labels, _ in fams[0][2]] \
            == [{"k": "1"}, {"k": "2"}]


class TestMerge:
    def test_counter_and_gauge_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7
        g, h = Gauge("g"), Gauge("g")
        g.set(1)
        h.set(9)
        g.merge(h)  # incoming snapshot wins
        assert g.value == 9

    def test_histogram_merge_is_exact(self):
        a, b = Histogram("h"), Histogram("h")
        for v in (1, 2, 2):
            a.observe(v)
        for v in (2, 5):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == 12
        assert a.min == 1 and a.max == 5
        assert a.by_value == {1: 1, 2: 3, 5: 1}

    def test_histogram_merge_respects_cap_but_keeps_totals(self):
        a = Histogram("h", max_distinct=2)
        b = Histogram("h")
        for v in range(6):
            b.observe(v)
        a.merge(b)
        assert a.count == 6
        assert a.total == 15
        assert len(a.by_value) == 2

    def test_histogram_merge_order_determinism(self):
        def peers():
            ps = []
            for vals in ((3, 1, 4), (1, 5, 9), (2, 6, 5, 3)):
                h = Histogram("h")
                for v in vals:
                    h.observe(v)
                ps.append(h)
            return ps

        import itertools
        dicts = []
        for order in itertools.permutations(range(3)):
            merged = Histogram("h")
            ps = peers()
            for i in order:
                merged.merge(ps[i])
            dicts.append(merged.as_dict())
        assert all(d == dicts[0] for d in dicts)

    def test_summary_merge_order_does_not_change_percentiles(self):
        ranges = (range(0, 50), range(100, 150), range(200, 250))

        def peers():
            ps = []
            for r in ranges:
                s = Summary("s")
                for v in r:
                    s.observe(v)
                ps.append(s)
            return ps

        import itertools
        stats = []
        for order in itertools.permutations(range(3)):
            merged = Summary("s")
            ps = peers()
            for i in order:
                merged.merge(ps[i])
            stats.append((merged.count, merged.total, merged.min, merged.max,
                          merged.percentile(50), merged.percentile(90),
                          merged.percentile(99)))
        assert all(s == stats[0] for s in stats), stats
        count, total, mn, mx, p50, _, p99 = stats[0]
        assert count == 150
        assert total == sum(sum(r) for r in ranges)
        assert (mn, mx) == (0, 249)
        assert 100 <= p50 <= 150 and p99 >= 240

    def test_summary_merge_pools_all_retained_samples(self):
        a, b = Summary("s"), Summary("s")
        for v in range(10):
            a.observe(v)
        for v in range(1000, 1010):
            b.observe(v)
        a.merge(b)
        assert a.count == 20
        assert a._samples == sorted(list(range(10)) + list(range(1000, 1010)))

    def test_registry_merge_creates_missing_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("only.b", worker="1").inc(5)
        b.histogram("lat").observe(7)
        a.merge(b)
        d = a.as_dict()
        assert d["shared"] == 3
        assert d["only.b{worker=1}"] == 5
        assert d["lat"]["count"] == 1

"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_sets(self):
        g = Gauge("x")
        g.set(3)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (8, 8, 8, 3):
            h.observe(v)
        assert h.count == 4
        assert h.total == 27
        assert h.min == 3
        assert h.max == 8
        assert h.mean == pytest.approx(27 / 4)
        assert h.by_value == {8: 3, 3: 1}

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_distinct_value_cap(self):
        h = Histogram("h", max_distinct=4)
        for v in range(10):
            h.observe(v)
        # summary stats stay exact, the value map stops growing
        assert h.count == 10
        assert h.min == 0 and h.max == 9
        assert len(h.by_value) == 4

    def test_as_dict(self):
        h = Histogram("h")
        h.observe(2)
        h.observe(2)
        d = h.as_dict()
        assert d["count"] == 2
        assert d["sum"] == 4
        assert d["by_value"] == {"2": 2}


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        c = r.counter("a.b")
        assert r.counter("a.b") is c
        assert "a.b" in r
        assert len(r) == 1

    def test_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            r.gauge("x")

    def test_as_dict_shapes(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(0.5)
        r.histogram("h").observe(7)
        d = r.as_dict()
        assert d["c"] == 2
        assert d["g"] == 0.5
        assert d["h"]["count"] == 1

    def test_render(self):
        r = MetricsRegistry()
        assert r.render() == "metrics: (none recorded)"
        r.counter("hits").inc(3)
        text = r.render()
        assert text.startswith("metrics:")
        assert "hits" in text and "3" in text

"""End-to-end profiling: the ``repro profile`` CLI, the exact
children-sum-to-parent invariant on a real workload, strict-vs-fast
span equality, and plan-cache statistics."""

import json

import numpy as np
import pytest

from repro.algorithms import split_radix_sort
from repro.cli import main
from repro.svm.context import SVM


def _span_index(doc):
    """name -> list of span dicts, over the whole JSON tree."""
    out: dict = {}

    def walk(span):
        out.setdefault(span["name"], []).append(span)
        for child in span.get("children", ()):
            walk(child)

    walk(doc["profile"])
    return out


class TestCLI:
    def test_profile_sort_tree(self, capsys):
        assert main(["profile", "--algo", "sort", "--format", "tree",
                     "--n", "512", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "profile: VLEN=1024" in out
        assert "radix_sort(n=512, bits=4)" in out
        assert "split(n=512)" in out
        assert "metrics:" in out
        assert "svm.strip_vl" in out

    def test_profile_scan_json(self, capsys):
        assert main(["profile", "--algo", "scan", "--format", "json",
                     "--n", "300"]) == 0
        doc = json.loads(capsys.readouterr().out)
        spans = _span_index(doc)
        assert "scan" in spans and "seg_scan" in spans

    def test_profile_chrome_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["profile", "--algo", "sort", "--n", "256", "--bits", "2",
                     "--format", "chrome-trace", "--out", str(out_file)]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        # Perfetto/chrome://tracing requirements: the traceEvents array,
        # and complete events with name/ph/ts/dur/pid/tid
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for e in doc["traceEvents"]:
            assert isinstance(e["name"], str)
            assert e["ph"] in ("M", "X", "C", "i")
            if e["ph"] == "X":
                for key in ("ts", "dur", "pid", "tid"):
                    assert key in e
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"radix_sort", "pass", "split"} <= names

    def test_profile_filter_shows_cache_hit(self, capsys):
        assert main(["profile", "--algo", "filter", "--format", "json",
                     "--n", "500"]) == 0
        doc = json.loads(capsys.readouterr().out)
        event_names = [e["name"] for e in doc["events"]]
        assert "plan_cache.miss" in event_names
        assert "plan_cache.hit" in event_names
        assert doc["metrics"]["engine.plan_cache.hits"] == 1
        assert doc["metrics"]["engine.plan_cache.misses"] == 1

    def test_profile_strips_flag(self, capsys):
        assert main(["profile", "--algo", "scan", "--n", "100",
                     "--mode", "strict", "--strips", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "strip" in _span_index(doc)


class TestExactAttribution:
    """The acceptance invariant: per-category counts of a span's
    children (with the synthetic ``(self)``) sum EXACTLY to the
    parent's delta, on a real radix-sort profile."""

    @pytest.mark.parametrize("mode", ["strict", "fast"])
    def test_children_sum_exactly(self, mode):
        svm = SVM(vlen=256, mode=mode, profile=True)
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 256, 777, dtype=np.uint32)
        arr = svm.array(keys)
        split_radix_sort(svm, arr, bits=8)
        assert np.array_equal(arr.to_numpy(), np.sort(keys))
        doc = svm.profiler.to_json()

        checked = 0

        def check(span):
            nonlocal checked
            kids = span.get("children")
            if kids:
                summed: dict = {}
                for child in kids:
                    assert child["total"] >= 0
                    for cat, n in child["by_category"].items():
                        assert n >= 0
                        summed[cat] = summed.get(cat, 0) + n
                assert summed == span["by_category"], span["name"]
                assert sum(c["total"] for c in kids) == span["total"]
                checked += 1
                for child in kids:
                    check(child)

        check(doc["profile"])
        assert checked > 10  # root, radix_sort, 8 passes, splits...

    def test_strict_and_fast_span_deltas_identical(self):
        """The repo's strict/fast counter equality, per span: the span
        tree and every per-category delta match across modes."""

        def run(mode):
            svm = SVM(vlen=256, mode=mode, profile=True)
            rng = np.random.default_rng(3)
            keys = rng.integers(0, 64, 500, dtype=np.uint32)
            arr = svm.array(keys)
            split_radix_sort(svm, arr, bits=6)
            svm.profiler.finish()
            return [
                (s.name, tuple(sorted(s.meta.items() - {("path", "strict"),
                                                        ("path", "fast")})),
                 tuple(sorted((c.value, n) for c, n
                              in s.delta.by_category.items() if n)))
                for s in svm.profiler.root.walk()
            ]

        strict = run("strict")
        fast = run("fast")
        assert strict == fast


class TestCacheStats:
    def test_stats_dict_counts(self):
        from repro.engine.cache import PlanCache

        cache = PlanCache(capacity=2)
        assert cache.get(("a",)) is None
        cache.put(("a",), "fa")
        assert cache.get(("a",)) == "fa"
        cache.put(("b",), "fb")
        cache.put(("c",), "fc")  # evicts ("a",)
        s = cache.stats_dict()
        assert s == {"hits": 1, "misses": 1, "evictions": 1,
                     "disk_hits": 0, "compiles": 1,
                     "size": 2, "capacity": 2, "hit_rate": 0.5}
        assert cache.size == 2

    def test_fuse_cli_prints_cache_stats(self, capsys):
        assert main(["fuse", "--n", "500", "--pipeline", "elementwise"]) == 0
        out = capsys.readouterr().out
        assert "plan cache: hits=1 misses=1" in out
        assert "hit_rate=0.50" in out
        # the pre-existing fuse output survives
        assert "bit-identical" in out

    def test_engine_reports_hit_on_alpha_equivalent_plan(self):
        svm = SVM(vlen=256, profile=True)
        for _ in range(2):
            data = svm.array(np.arange(100, dtype=np.uint32))
            with svm.lazy() as lz:
                lz.p_add(data, 1)
                lz.p_mul(data, 2)
        metrics = svm.profiler.metrics
        assert metrics.counter("engine.plan_cache.misses").value == 1
        assert metrics.counter("engine.plan_cache.hits").value == 1
        assert metrics.gauge("engine.plan_cache.size").value == 1

"""Span mechanics: nesting, attribution, exception safety, and the
zero-overhead-when-off contract."""

import pytest

from repro.obs.spans import NULL_SPAN, ProfileCollector, profile, span
from repro.rvv.counters import Cat
from repro.rvv.machine import RVVMachine
from repro.svm.context import SVM


def _collector(machine, **kw) -> ProfileCollector:
    col = ProfileCollector(machine, **kw)
    machine.collector = col
    return col


class TestNesting:
    def test_child_delta_within_parent(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with col.span("outer"):
            m.count(Cat.SCALAR, 5)
            with col.span("inner"):
                m.count(Cat.VARITH, 3)
            m.count(Cat.SCALAR, 2)
        col.finish()
        outer = col.root.children[0]
        inner = outer.children[0]
        assert outer.name == "outer" and inner.name == "inner"
        nonzero = {c: n for c, n in inner.delta.by_category.items() if n}
        assert nonzero == {Cat.VARITH: 3}
        assert outer.delta.by_category[Cat.SCALAR] == 7
        assert outer.delta.by_category[Cat.VARITH] == 3
        # self delta excludes the child, category by category
        own = outer.self_delta().by_category
        assert own.get(Cat.VARITH, 0) == 0
        assert own[Cat.SCALAR] == 7

    def test_sibling_spans_do_not_overlap(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with col.span("a"):
            m.count(Cat.SCALAR, 1)
        with col.span("b"):
            m.count(Cat.SCALAR, 10)
        col.finish()
        a, b = col.root.children
        assert a.total == 1
        assert b.total == 10

    def test_walk_preorder(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with col.span("a"):
            with col.span("b"):
                pass
        with col.span("c"):
            pass
        col.finish()
        assert [s.name for s in col.root.walk()] == ["profile", "a", "b", "c"]

    def test_meta_and_label(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with col.span("work", n=42, mode="strict") as s:
            pass
        assert s.meta == {"n": 42, "mode": "strict"}
        assert s.label() == "work(n=42, mode=strict)"


class TestExceptionSafety:
    def test_span_closes_and_records_error(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with pytest.raises(ValueError):
            with col.span("boom"):
                m.count(Cat.SCALAR, 4)
                raise ValueError("x")
        s = col.root.children[0]
        assert s.delta is not None
        assert s.total == 4
        assert s.error == "ValueError"
        # the stack unwound: new spans attach at the root again
        with col.span("after"):
            pass
        assert [c.name for c in col.root.children] == ["boom", "after"]

    def test_leaked_inner_span_is_unwound(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        outer_ctx = col.span("outer")
        outer = outer_ctx.__enter__()
        col._open("leaked", {})  # inner span never closed by its owner
        m.count(Cat.SCALAR, 1)
        outer_ctx.__exit__(None, None, None)
        assert outer.delta is not None
        assert all(c.delta is not None for c in outer.children)

    def test_finish_is_idempotent(self):
        m = RVVMachine(vlen=256)
        col = _collector(m)
        with col.span("a"):
            m.count(Cat.SCALAR, 1)
        r1 = col.finish()
        t1 = r1.total
        r2 = col.finish()
        assert r2 is r1
        assert r2.total == t1


class TestZeroOverhead:
    def test_null_span_is_shared_singleton(self):
        m = RVVMachine(vlen=256)
        assert m.collector is None
        assert span(m, "anything", n=1) is NULL_SPAN
        assert span(m, "other") is NULL_SPAN

    def test_no_collector_means_no_counter_perturbation(self):
        svm_off = SVM(vlen=256, mode="strict")
        svm_on = SVM(vlen=256, mode="strict", profile=True)
        a_off = svm_off.array(list(range(300)))
        a_on = svm_on.array(list(range(300)))
        svm_off.plus_scan(a_off)
        svm_on.plus_scan(a_on)
        # profiling must never change results or counters
        assert a_off.to_numpy().tolist() == a_on.to_numpy().tolist()
        assert (svm_off.machine.counters.snapshot().by_category
                == svm_on.machine.counters.snapshot().by_category)

    def test_instrumented_methods_marked(self):
        assert getattr(SVM.scan, "__obs_instrumented__", False)
        assert getattr(SVM.p_add, "__obs_instrumented__", False)
        assert getattr(SVM.pack, "__obs_instrumented__", False)

    def test_collector_off_produces_no_spans(self):
        svm = SVM(vlen=256)
        a = svm.array([1, 2, 3, 4])
        svm.plus_scan(a)
        assert svm.profiler is None


class TestProfileContextManager:
    def test_installs_and_removes(self):
        m = RVVMachine(vlen=256)
        with profile(m) as col:
            assert m.collector is col
            with col.span("x"):
                m.count(Cat.SCALAR, 1)
        assert m.collector is None
        assert col.root.delta is not None

    def test_double_install_rejected(self):
        m = RVVMachine(vlen=256)
        with profile(m):
            with pytest.raises(RuntimeError, match="already installed"):
                with profile(m):
                    pass


class TestStripSpans:
    def test_strip_spans_capture_each_vsetvl(self):
        svm = SVM(vlen=256, mode="strict", profile="strips")
        a = svm.array(list(range(20)))  # vlmax=8 -> strips of 8, 8, 4
        svm.p_add(a, 1)
        col = svm.profiler
        col.finish()
        p_add = col.root.children[0]
        strips = [c for c in p_add.children if c.strip]
        assert [s.meta["vl"] for s in strips] == [8, 8, 4]
        assert [s.meta["i"] for s in strips] == [0, 1, 2]
        # each strip saw its own vsetvl (counted inside the strip span)
        for s in strips:
            assert s.delta.by_category.get(Cat.VCONFIG, 0) == 1
        assert p_add.n_strips == 3

    def test_strip_vl_histogram_without_strip_spans(self):
        svm = SVM(vlen=256, mode="strict", profile=True)
        a = svm.array(list(range(20)))
        svm.p_add(a, 1)
        col = svm.profiler
        h = col.metrics.histogram("svm.strip_vl")
        assert h.count == 3
        assert h.by_value == {8: 2, 4: 1}
        assert not any(s.strip for s in col.root.walk())


class TestInstrumentedDispatch:
    def test_span_meta_records_n_and_path(self):
        svm = SVM(vlen=256, mode="strict", profile=True)
        a = svm.array([1, 2, 3])
        svm.p_add(a, 1)
        svm.profiler.finish()
        s = svm.profiler.root.children[0]
        assert s.name == "p_add"
        assert s.meta == {"n": 3, "path": "strict"}

    def test_fast_path_recorded(self):
        svm = SVM(vlen=256, mode="fast", profile=True)
        a = svm.array([1, 2, 3])
        svm.p_add(a, 1)
        svm.profiler.finish()
        assert svm.profiler.root.children[0].meta["path"] == "fast"

    def test_profile_argument_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="profile"):
            SVM(vlen=256, profile="bogus")

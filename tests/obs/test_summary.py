"""The Summary metric: deterministic percentiles on a bounded buffer."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Summary


class TestSummary:
    def test_empty(self):
        s = Summary("lat")
        assert s.count == 0 and s.mean == 0.0
        assert s.percentile(50) is None
        assert s.as_dict()["p99"] is None

    def test_exact_percentiles_small(self):
        s = Summary("lat")
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            s.observe(v)
        assert s.count == 5 and s.min == 1.0 and s.max == 5.0
        assert s.mean == 3.0
        assert s.percentile(50) == 3.0
        assert s.percentile(100) == 5.0
        assert s.percentile(1) == 1.0

    def test_nearest_rank_convention(self):
        s = Summary("lat")
        for v in range(1, 101):          # 1..100
            s.observe(float(v))
        assert s.percentile(50) == 50.0
        assert s.percentile(90) == 90.0
        assert s.percentile(99) == 99.0

    def test_bounded_buffer_keeps_percentiles_sane(self):
        s = Summary("lat", max_samples=64)
        n = 10_000
        for v in range(n):
            s.observe(float(v))
        assert s.count == n and s.max == float(n - 1)
        assert len(s._samples) <= 64
        # stride-decimated percentiles stay within a decimation step
        assert abs(s.percentile(50) - n / 2) <= n / 32
        assert s.percentile(99) >= s.percentile(50)

    def test_determinism_identical_runs(self):
        def run():
            s = Summary("lat", max_samples=32)
            for v in range(5000):
                s.observe(float((v * 7919) % 1000))
            return s.as_dict()

        assert run() == run()

    def test_registry_integration(self):
        r = MetricsRegistry()
        s = r.summary("serve.latency_ms")
        assert r.summary("serve.latency_ms") is s
        s.observe(2.5)
        d = r.as_dict()
        assert d["serve.latency_ms"]["count"] == 1
        assert "serve.latency_ms" in r.render()

    def test_registry_type_conflict(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.summary("x")

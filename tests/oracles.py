"""Per-element reference oracles (deliberately naive: Python loops,
not NumPy tricks) that the kernels are tested against."""

from __future__ import annotations

import numpy as np


# ---------------------------------------------------------------------------

def scan_oracle(values, op, identity, inclusive=True, dtype=np.uint32):
    """Reference ⊕-scan computed one element at a time with modular
    wrap — the specification the kernels are tested against."""
    dtype = np.dtype(dtype)
    bits = dtype.itemsize * 8
    mask = (1 << bits) - 1
    out = []
    acc = identity & mask
    for v in values:
        if inclusive:
            acc = op(acc, int(v)) & mask
            out.append(acc)
        else:
            out.append(acc)
            acc = op(acc, int(v)) & mask
    return np.array(out, dtype=dtype)


def seg_scan_oracle(values, flags, op, identity, inclusive=True, dtype=np.uint32):
    """Reference segmented ⊕-scan: the accumulator resets at every
    head flag (element 0 implicitly heads a segment)."""
    dtype = np.dtype(dtype)
    bits = dtype.itemsize * 8
    mask = (1 << bits) - 1
    out = []
    acc = identity & mask
    for i, v in enumerate(values):
        if i == 0 or flags[i]:
            acc = identity & mask
        if inclusive:
            acc = op(acc, int(v)) & mask
            out.append(acc)
        else:
            out.append(acc)
            acc = op(acc, int(v)) & mask
    return np.array(out, dtype=dtype)


OPS = {
    "plus": (lambda a, b: a + b, 0),
    "max": (lambda a, b: max(a, b), 0),
    "min": (lambda a, b: min(a, b), (1 << 32) - 1),
    "or": (lambda a, b: a | b, 0),
    "and": (lambda a, b: a & b, (1 << 32) - 1),
    "xor": (lambda a, b: a ^ b, 0),
}

"""Property-based tests for segment descriptors and derived ops."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SVM
from repro.algorithms import rle_decode, rle_encode
from repro.svm.segment_descriptor import (
    head_flags_to_head_pointers,
    head_flags_to_lengths,
    head_pointers_to_head_flags,
    lengths_to_head_flags,
    segment_ids,
)

_LENGTHS = st.lists(st.integers(1, 10), min_size=0, max_size=30)


@given(lengths=_LENGTHS)
@settings(max_examples=60, deadline=None)
def test_lengths_roundtrip(lengths):
    flags = lengths_to_head_flags(lengths)
    assert head_flags_to_lengths(flags).tolist() == lengths


@given(lengths=st.lists(st.integers(1, 10), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_pointers_roundtrip(lengths):
    flags = lengths_to_head_flags(lengths)
    pointers = head_flags_to_head_pointers(flags)
    back = head_pointers_to_head_flags(pointers, flags.size)
    back[0] = flags[0] if flags.size else 0  # flag 0 is implicit either way
    assert np.array_equal(back[1:], flags[1:])


@given(lengths=st.lists(st.integers(1, 10), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_segment_ids_consistent_with_lengths(lengths):
    flags = lengths_to_head_flags(lengths)
    ids = segment_ids(flags)
    counts = np.bincount(ids, minlength=len(lengths))
    assert counts.tolist() == lengths


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_rle_roundtrip(data):
    values = data.draw(st.lists(st.integers(0, 5), min_size=1, max_size=60))
    svm = SVM(vlen=128, mode="strict")
    arr = svm.array(values)
    v, l, k = rle_encode(svm, arr)
    out = rle_decode(svm, v, l, k)
    assert out.to_numpy().tolist() == values


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_rle_runs_are_maximal(data):
    values = data.draw(st.lists(st.integers(0, 3), min_size=1, max_size=60))
    svm = SVM(vlen=128, mode="fast")
    v, l, k = rle_encode(svm, svm.array(values))
    vals = v.to_numpy()[:k]
    lens = l.to_numpy()[:k]
    assert (lens >= 1).all()
    assert int(lens.sum()) == len(values)
    # adjacent runs always differ (maximality)
    assert (vals[1:] != vals[:-1]).all()

"""Property-based tests at the intrinsic level: algebraic identities
the RVV instructions must satisfy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.rvv import RVVMachine, VMask, VReg
from repro.rvv.intrinsics import arith, compare, mask as mo, move, permutation as pm

_LANES = st.integers(min_value=1, max_value=64)


def _vec(data):
    return VReg(np.array(data, dtype=np.uint32))


def _mask(bits):
    return VMask(np.array(bits, dtype=bool))


@st.composite
def vec_and_mask(draw, max_lanes=64):
    n = draw(st.integers(1, max_lanes))
    data = draw(st.lists(st.integers(0, 2**32 - 1), min_size=n, max_size=n))
    bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return _vec(data), _mask(bits), n


@given(vm=vec_and_mask())
@settings(max_examples=80, deadline=None)
def test_viota_is_exclusive_cumsum(vm):
    _, mask, n = vm
    m = RVVMachine(vlen=2048)
    out = mo.viota_m(m, mask, n).data
    expect = np.concatenate(([0], np.cumsum(mask.bits)[:-1])).astype(np.uint32)
    assert np.array_equal(out, expect)


@given(vm=vec_and_mask())
@settings(max_examples=80, deadline=None)
def test_vcpop_equals_viota_last_plus_bit(vm):
    """vcpop == viota[last] + mask[last] — the identity Listing 8's
    cross-strip count propagation relies on."""
    _, mask, n = vm
    m = RVVMachine(vlen=2048)
    iota = mo.viota_m(m, mask, n).data
    pop = mo.vcpop_m(m, mask, n)
    assert pop == int(iota[-1]) + int(mask.bits[-1])


@given(vm=vec_and_mask())
@settings(max_examples=80, deadline=None)
def test_msbf_msof_msif_partition(vm):
    """vmsbf | vmsof == vmsif, and vmsbf & vmsof == 0."""
    _, mask, n = vm
    m = RVVMachine(vlen=2048)
    sbf = mo.vmsbf_m(m, mask, n).bits
    sof = mo.vmsof_m(m, mask, n).bits
    sif = mo.vmsif_m(m, mask, n).bits
    assert np.array_equal(sbf | sof, sif)
    assert not (sbf & sof).any()


@given(vm=vec_and_mask(), offset=st.integers(0, 70))
@settings(max_examples=80, deadline=None)
def test_slideup_preserves_low_lanes(vm, offset):
    vec, _, n = vm
    m = RVVMachine(vlen=2048)
    dest = move.vmv_v_x(m, 1234, n)
    out = pm.vslideup_vx(m, dest, vec, offset, n).data
    cut = min(offset, n)
    assert (out[:cut] == 1234).all()
    assert np.array_equal(out[cut:], vec.data[: n - cut])


@given(vm=vec_and_mask(), k=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_slide1up_iterated_equals_slideup(vm, k):
    """k applications of vslide1up(x, 0) == one vslideup by k over a
    zero destination — the identity behind the scan's doubling."""
    vec, _, n = vm
    m = RVVMachine(vlen=2048)
    cur = vec
    for _ in range(k):
        cur = pm.vslide1up_vx(m, cur, 0, n)
    zero = move.vmv_v_x(m, 0, n)
    direct = pm.vslideup_vx(m, zero, vec, k, n)
    assert np.array_equal(cur.data, direct.data)


@given(vm=vec_and_mask())
@settings(max_examples=80, deadline=None)
def test_compress_equals_boolean_indexing(vm):
    vec, mask, n = vm
    m = RVVMachine(vlen=2048)
    out = pm.vcompress_vm(m, mask, vec, n).data
    packed = vec.data[mask.bits]
    assert np.array_equal(out[: packed.size], packed)
    assert not out[packed.size:].any()


@given(vm=vec_and_mask())
@settings(max_examples=80, deadline=None)
def test_gather_identity_permutation(vm):
    vec, _, n = vm
    m = RVVMachine(vlen=2048)
    idx = mo.vid_v(m, n)
    assert np.array_equal(pm.vrgather_vv(m, vec, idx, n).data, vec.data)


@given(vm=vec_and_mask(), x=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_compare_complement(vm, x):
    """vmseq and vmsne partition the lanes; so do vmsltu and the
    ge idiom (vmnot of vmsltu)."""
    vec, _, n = vm
    m = RVVMachine(vlen=2048)
    eq = compare.vmseq_vx(m, vec, x, n).bits
    ne = compare.vmsne_vx(m, vec, x, n).bits
    assert np.array_equal(eq, ~ne)
    lt = compare.vmsltu_vx(m, vec, x, n)
    ge = mo.vmnot_m(m, lt, n).bits
    assert np.array_equal(lt.bits, ~ge)


@given(vm=vec_and_mask(), x=st.integers(0, 2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_masked_merge_identity(vm, x):
    """vmerge(mask, a, a) == a, and masked add with all-false mask is
    the maskedoff operand."""
    vec, mask, n = vm
    m = RVVMachine(vlen=2048)
    assert np.array_equal(
        arith.vmerge_vvm(m, mask, vec, vec, n).data, vec.data)
    off = move.vmv_v_x(m, 7, n)
    none = _mask([False] * n)
    out = arith.vadd_vx(m, vec, x, n, mask=none, maskedoff=off)
    assert np.array_equal(out.data, off.data)


@given(vm=vec_and_mask(), x=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_add_sub_roundtrip(vm, x):
    vec, _, n = vm
    m = RVVMachine(vlen=2048)
    there = arith.vadd_vx(m, vec, x, n)
    back = arith.vsub_vx(m, there, x, n)
    assert np.array_equal(back.data, vec.data)

"""Property-based tests for the memory substrate: the allocator
against a reference model, and scatter/gather inverses."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryError_
from repro.rvv.memory import Allocator, Memory


@st.composite
def malloc_free_script(draw):
    """A random interleaving of malloc(size) and free(handle) actions."""
    n_ops = draw(st.integers(1, 40))
    ops = []
    live = 0
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("malloc", draw(st.integers(0, 2000))))
            live += 1
    return ops


@given(script=malloc_free_script())
@settings(max_examples=80, deadline=None)
def test_allocator_blocks_never_overlap(script):
    """Live blocks are disjoint, aligned, inside the region, and
    live_bytes matches a reference tally — for any malloc/free order."""
    heap = Allocator(Memory(1 << 16))
    live: list[tuple[int, int]] = []  # (addr, requested size)
    expected_live_bytes = 0
    for op, arg in script:
        if op == "malloc":
            try:
                addr = heap.malloc(arg)
            except MemoryError_:
                continue  # genuine OOM under this script
            rounded = max((arg + 15) // 16 * 16, 16)
            assert addr % 16 == 0
            assert 0 <= addr and addr + rounded <= 1 << 16
            for other_addr, other_size in live:
                other_rounded = max((other_size + 15) // 16 * 16, 16)
                assert addr + rounded <= other_addr or other_addr + other_rounded <= addr
            live.append((addr, arg))
            expected_live_bytes += rounded
        else:
            addr, size = live.pop(arg % max(len(live), 1))
            heap.free(addr)
            expected_live_bytes -= max((size + 15) // 16 * 16, 16)
    assert heap.live_bytes == expected_live_bytes


@given(script=malloc_free_script())
@settings(max_examples=40, deadline=None)
def test_allocator_full_release_restores_capacity(script):
    heap = Allocator(Memory(1 << 16))
    addrs = []
    for op, arg in script:
        if op == "malloc":
            try:
                addrs.append(heap.malloc(arg))
            except MemoryError_:
                pass
        elif addrs:
            heap.free(addrs.pop(arg % len(addrs)))
    for addr in addrs:
        heap.free(addr)
    # after freeing everything, one maximal block must fit again
    assert heap.malloc((1 << 16) - 16) is not None


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_scatter_gather_inverse(data):
    """gather(scatter(x)) == x for unique aligned offsets."""
    n = data.draw(st.integers(1, 50))
    values = np.array(
        data.draw(st.lists(st.integers(0, 2**32 - 1), min_size=n, max_size=n)),
        dtype=np.uint32,
    )
    slots = data.draw(st.permutations(range(n)))
    offsets = np.array(slots, dtype=np.uint32) * 4
    mem = Memory(4096)
    mem.scatter(0, offsets, values)
    back = mem.gather(0, offsets, np.uint32)
    assert np.array_equal(back, values)

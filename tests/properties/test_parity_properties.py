"""Property-based strict/fast parity: hypothesis searches the
configuration space for any divergence in results or counts."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SVM
from repro.rvv.types import LMUL

_VALUES = st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=100)
_VLENS = st.sampled_from([128, 256, 512, 1024])
_LMULS = st.sampled_from([LMUL.M1, LMUL.M2, LMUL.M4, LMUL.M8])
_PRESETS = st.sampled_from(["ideal", "paper"])


def _both(vlen, codegen):
    return (SVM(vlen=vlen, codegen=codegen, mode="strict"),
            SVM(vlen=vlen, codegen=codegen, mode="fast"))


@given(values=_VALUES, vlen=_VLENS, lmul=_LMULS, preset=_PRESETS)
@settings(max_examples=50, deadline=None)
def test_scan_parity(values, vlen, lmul, preset):
    results = []
    for svm in _both(vlen, preset):
        a = svm.array(values)
        svm.reset()
        svm.plus_scan(a, lmul=lmul)
        results.append((a.to_numpy().tolist(), svm.counters.as_dict()))
    assert results[0] == results[1]


@given(data=st.data(), vlen=_VLENS, lmul=_LMULS, preset=_PRESETS)
@settings(max_examples=50, deadline=None)
def test_seg_scan_parity(data, vlen, lmul, preset):
    values = data.draw(_VALUES)
    flags = data.draw(st.lists(st.integers(0, 1), min_size=len(values),
                               max_size=len(values)))
    results = []
    for svm in _both(vlen, preset):
        a, f = svm.array(values), svm.array(flags)
        svm.reset()
        svm.seg_plus_scan(a, f, lmul=lmul)
        results.append((a.to_numpy().tolist(), svm.counters.as_dict()))
    assert results[0] == results[1]


@given(data=st.data(), vlen=_VLENS, preset=_PRESETS)
@settings(max_examples=50, deadline=None)
def test_pack_parity_data_dependent_counts(data, vlen, preset):
    """pack's count is data-dependent (strips with no survivors skip
    stores) — exactly where strict and fast could drift apart."""
    values = data.draw(_VALUES)
    flags = data.draw(st.lists(st.integers(0, 1), min_size=len(values),
                               max_size=len(values)))
    results = []
    for svm in _both(vlen, preset):
        a, f = svm.array(values), svm.array(flags)
        svm.reset()
        out, kept = svm.pack(a, f)
        results.append((kept, out.to_numpy()[:kept].tolist(),
                        svm.counters.as_dict()))
    assert results[0] == results[1]


@given(values=_VALUES, bit=st.integers(0, 31), vlen=_VLENS, preset=_PRESETS)
@settings(max_examples=50, deadline=None)
def test_enumerate_parity(values, bit, vlen, preset):
    flags_np = (np.array(values, dtype=np.uint32) >> bit) & 1
    results = []
    for svm in _both(vlen, preset):
        f = svm.array(flags_np)
        svm.reset()
        out, count = svm.enumerate(f, set_bit=True)
        results.append((count, out.to_numpy().tolist(), svm.counters.as_dict()))
    assert results[0] == results[1]

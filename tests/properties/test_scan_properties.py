"""Property-based tests (hypothesis) for the scan primitives' core
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SVM
from tests.oracles import OPS, scan_oracle, seg_scan_oracle

_ELEMENTS = st.integers(min_value=0, max_value=2**32 - 1)
_ARRAYS = st.lists(_ELEMENTS, min_size=0, max_size=120)
_OP_NAMES = st.sampled_from(sorted(OPS))
_VLENS = st.sampled_from([128, 256, 512])
_MODES = st.sampled_from(["strict", "fast"])


@given(values=_ARRAYS, op=_OP_NAMES, vlen=_VLENS, mode=_MODES)
@settings(max_examples=60, deadline=None)
def test_inclusive_scan_matches_oracle(values, op, vlen, mode):
    fn, identity = OPS[op]
    svm = SVM(vlen=vlen, mode=mode)
    a = svm.array(values)
    svm.scan(a, op)
    assert np.array_equal(a.to_numpy(), scan_oracle(values, fn, identity))


@given(values=_ARRAYS, op=_OP_NAMES, vlen=_VLENS)
@settings(max_examples=40, deadline=None)
def test_exclusive_scan_matches_oracle(values, op, vlen):
    fn, identity = OPS[op]
    svm = SVM(vlen=vlen, mode="strict")
    a = svm.array(values)
    svm.scan(a, op, inclusive=False)
    expect = scan_oracle(values, fn, identity, inclusive=False)
    assert np.array_equal(a.to_numpy(), expect)


@given(values=_ARRAYS, op=_OP_NAMES)
@settings(max_examples=40, deadline=None)
def test_scan_last_equals_reduce(values, op):
    """The inclusive scan's final lane is the full reduction."""
    svm = SVM(vlen=128, mode="strict")
    if not values:
        return
    total = svm.reduce(svm.array(values), op)
    a = svm.array(values)
    svm.scan(a, op)
    assert total == int(a.to_numpy()[-1])


@given(data=st.data(), op=_OP_NAMES, vlen=_VLENS, mode=_MODES)
@settings(max_examples=60, deadline=None)
def test_segmented_scan_matches_oracle(data, op, vlen, mode):
    fn, identity = OPS[op]
    values = data.draw(_ARRAYS)
    flags = data.draw(st.lists(st.integers(0, 1), min_size=len(values),
                               max_size=len(values)))
    svm = SVM(vlen=vlen, mode=mode)
    a, f = svm.array(values), svm.array(flags)
    svm.seg_scan(a, f, op)
    expect = seg_scan_oracle(values, flags, fn, identity)
    assert np.array_equal(a.to_numpy(), expect)


@given(data=st.data(), op=_OP_NAMES)
@settings(max_examples=40, deadline=None)
def test_segmented_equals_per_segment_unsegmented(data, op):
    """Splitting at the heads and scanning each piece independently
    must equal one segmented scan — the defining property (§5)."""
    values = data.draw(st.lists(_ELEMENTS, min_size=1, max_size=80))
    flags = data.draw(st.lists(st.integers(0, 1), min_size=len(values),
                               max_size=len(values)))
    svm = SVM(vlen=128, mode="strict")
    a, f = svm.array(values), svm.array(flags)
    svm.seg_scan(a, f, op)
    got = a.to_numpy()

    flags = list(flags)
    flags[0] = 1
    bounds = [i for i, h in enumerate(flags) if h] + [len(values)]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        piece = svm.array(values[lo:hi])
        svm.scan(piece, op)
        assert np.array_equal(got[lo:hi], piece.to_numpy())


@given(values=_ARRAYS, vlen=_VLENS)
@settings(max_examples=40, deadline=None)
def test_no_heads_is_unsegmented(values, vlen):
    """An all-zero flag vector reduces segmented scan to the plain
    scan (§5.2's correctness requirement)."""
    svm = SVM(vlen=vlen, mode="strict")
    a = svm.array(values)
    f = svm.zeros(len(values))
    b = svm.array(values)
    svm.seg_plus_scan(a, f)
    svm.plus_scan(b)
    assert np.array_equal(a.to_numpy(), b.to_numpy())


@given(values=_ARRAYS, vlen1=_VLENS, vlen2=_VLENS)
@settings(max_examples=30, deadline=None)
def test_results_vlen_invariant(values, vlen1, vlen2):
    """VLA portability: results cannot depend on the machine's VLEN."""
    outs = []
    for vlen in (vlen1, vlen2):
        svm = SVM(vlen=vlen, mode="strict")
        a = svm.array(values)
        svm.plus_scan(a)
        outs.append(a.to_numpy())
    assert np.array_equal(outs[0], outs[1])

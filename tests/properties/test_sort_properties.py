"""Property-based tests for the sorting algorithms and split."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SVM
from repro.algorithms import flat_quicksort, split_radix_sort

_KEYS = st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=90)
_SMALL_KEYS = st.lists(st.integers(0, 255), min_size=0, max_size=90)
_VLENS = st.sampled_from([128, 256, 1024])


@given(keys=_SMALL_KEYS, vlen=_VLENS)
@settings(max_examples=40, deadline=None)
def test_radix_sort_equals_npsort(keys, vlen):
    svm = SVM(vlen=vlen, mode="fast")
    a = svm.array(keys)
    split_radix_sort(svm, a, bits=8)
    assert np.array_equal(a.to_numpy(), np.sort(np.array(keys, dtype=np.uint32)))


@given(keys=_KEYS)
@settings(max_examples=20, deadline=None)
def test_radix_sort_full_width(keys):
    svm = SVM(vlen=256, mode="fast")
    a = svm.array(keys)
    split_radix_sort(svm, a)
    assert np.array_equal(a.to_numpy(), np.sort(np.array(keys, dtype=np.uint32)))


@given(keys=st.lists(st.integers(0, 1000), min_size=0, max_size=70))
@settings(max_examples=25, deadline=None)
def test_flat_quicksort_equals_npsort(keys):
    svm = SVM(vlen=256, mode="fast")
    a = svm.array(keys)
    flat_quicksort(svm, a, shuffle=True, rng=np.random.default_rng(0))
    assert np.array_equal(a.to_numpy(), np.sort(np.array(keys, dtype=np.uint32)))


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_split_is_stable_partition(data):
    """Split's contract (Figure 3): 0-flag elements first, both groups
    in original order, boundary equals the zero count."""
    values = data.draw(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=80))
    flags = data.draw(st.lists(st.integers(0, 1), min_size=len(values),
                               max_size=len(values)))
    svm = SVM(vlen=128, mode="strict")
    dst, zeros = svm.split(svm.array(values), svm.array(flags))
    got = dst.to_numpy()
    values_np = np.array(values, dtype=np.uint32)
    flags_np = np.array(flags)
    assert zeros == int((flags_np == 0).sum())
    assert np.array_equal(got[:zeros], values_np[flags_np == 0])
    assert np.array_equal(got[zeros:], values_np[flags_np == 1])


@given(keys=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=60),
       bit=st.integers(0, 31))
@settings(max_examples=40, deadline=None)
def test_split_pass_invariant(keys, bit):
    """One radix pass: after splitting by bit b, the array is the
    stable partition by that bit — the loop invariant behind Listing 9."""
    svm = SVM(vlen=128, mode="fast")
    src = svm.array(keys)
    flags = svm.get_flags(src, bit)
    dst, zeros = svm.split(src, flags)
    got = dst.to_numpy()
    assert ((got[:zeros] >> bit) & 1 == 0).all()
    assert ((got[zeros:] >> bit) & 1 == 1).all()


@given(keys=_SMALL_KEYS)
@settings(max_examples=25, deadline=None)
def test_sort_is_permutation(keys):
    """The output must be a permutation of the input (no element
    created or destroyed)."""
    svm = SVM(vlen=256, mode="fast")
    a = svm.array(keys)
    split_radix_sort(svm, a, bits=8)
    got = a.to_numpy()
    assert sorted(got.tolist()) == sorted(keys)

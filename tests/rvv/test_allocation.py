"""Unit tests for the register-pressure/spill model behind Tables 5-6."""

import pytest

from repro.errors import AllocationError
from repro.rvv.allocation import (
    ELEMENTWISE_PROFILE,
    PLUS_SCAN_PROFILE,
    SEG_SCAN_PROFILE,
    SPILL_ACCESS_COST,
    RegisterProfile,
    ValueUse,
    plan_allocation,
    usable_groups,
)
from repro.rvv.types import LMUL


class TestUsableGroups:
    def test_lmul1_loses_only_masks(self):
        assert usable_groups(LMUL.M1, mask_values=1) == 31
        assert usable_groups(LMUL.M1, mask_values=2) == 30

    def test_grouped_loses_v0_group(self):
        assert usable_groups(LMUL.M2) == 15
        assert usable_groups(LMUL.M4) == 7
        assert usable_groups(LMUL.M8) == 3

    def test_negative_masks(self):
        with pytest.raises(AllocationError):
            usable_groups(LMUL.M1, mask_values=-1)


class TestSegScanProfile:
    """The paper's LMUL anomaly in numbers: 7 live values fit at
    LMUL<=4 and spill 4 at LMUL=8 (§6.3, Table 5)."""

    def test_no_spill_up_to_m4(self):
        for lm in (LMUL.M1, LMUL.M2, LMUL.M4):
            plan = plan_allocation(SEG_SCAN_PROFILE, lm)
            assert not plan.has_spills, lm
            assert plan.strip_cost(8) == 0

    def test_m4_fits_exactly(self):
        plan = plan_allocation(SEG_SCAN_PROFILE, LMUL.M4)
        assert plan.usable_groups == SEG_SCAN_PROFILE.n_values == 7

    def test_m8_spills_four_coldest(self):
        plan = plan_allocation(SEG_SCAN_PROFILE, LMUL.M8)
        assert set(plan.spilled) == {"flags_slideup", "vec_zero", "vec_one",
                                     "carry_bcast"}

    def test_m8_costs_match_calibration(self):
        """68 spill instructions per full strip at vl=256 (8 inner
        iterations): 4 inner accesses + 2 outer, at 2 instructions
        each — the Table 5 fit."""
        plan = plan_allocation(SEG_SCAN_PROFILE, LMUL.M8)
        assert plan.per_inner_iteration == 4 * SPILL_ACCESS_COST
        assert plan.per_strip_outer == 2 * SPILL_ACCESS_COST
        assert plan.strip_cost(8) == 68

    def test_frame_setup_only_when_spilling(self):
        assert plan_allocation(SEG_SCAN_PROFILE, LMUL.M4).frame_setup == 0
        assert plan_allocation(SEG_SCAN_PROFILE, LMUL.M8).frame_setup == 1950


class TestOtherProfiles:
    def test_elementwise_never_spills(self):
        for lm in LMUL:
            assert not plan_allocation(ELEMENTWISE_PROFILE, lm).has_spills

    def test_plus_scan_spills_one_at_m8(self):
        plan = plan_allocation(PLUS_SCAN_PROFILE, LMUL.M8)
        assert plan.spilled == ("carry_bcast",)


class TestSelectionPolicy:
    def test_keeps_hottest(self):
        profile = RegisterProfile("k", (
            ValueUse("cold", inner_accesses=0),
            ValueUse("hot", inner_accesses=5),
            ValueUse("warm", inner_accesses=2),
            ValueUse("cool", inner_accesses=1),
        ))
        plan = plan_allocation(profile, LMUL.M8)  # 3 usable groups
        assert plan.spilled == ("cold",)

    def test_ties_break_by_declaration_order(self):
        profile = RegisterProfile("k", (
            ValueUse("a", inner_accesses=1),
            ValueUse("b", inner_accesses=1),
            ValueUse("c", inner_accesses=1),
            ValueUse("d", inner_accesses=1),
        ))
        plan = plan_allocation(profile, LMUL.M8)
        assert plan.spilled == ("d",)

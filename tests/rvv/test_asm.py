"""Tests for the assembly-level executor, including the paper's
Listing 2 verbatim."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.rvv import Cat, RVVMachine
from repro.rvv.asm import LISTING2_VECTOR_ADD, AsmCPU, parse


@pytest.fixture
def machine():
    return RVVMachine(vlen=128)


class TestParser:
    def test_labels_and_comments(self):
        prog = parse("""
        # comment line
        start:
            li a0, 5   # trailing comment
        loop: end:
            ret
        """)
        assert prog.labels == {"start": 0, "loop": 1, "end": 1}
        assert prog.instructions[0].mnemonic == "li"
        assert prog.instructions[0].operands == ("a0", "5")

    def test_undefined_label(self):
        prog = parse("j nowhere")
        cpu = AsmCPU(RVVMachine(vlen=128))
        with pytest.raises(ReproError, match="nowhere"):
            cpu.run(prog)

    def test_unknown_mnemonic(self, machine):
        cpu = AsmCPU(machine)
        with pytest.raises(ReproError, match="unsupported mnemonic"):
            cpu.run(parse("frobnicate a0, a1"))


class TestScalarISA:
    def test_alu(self, machine):
        cpu = AsmCPU(machine)
        cpu.run(parse("""
            li a0, 10
            li a1, 3
            add a2, a0, a1
            sub a3, a0, a1
            slli a4, a1, 4
            addi a5, a0, -1
            ret
        """))
        assert cpu.x[12] == 13 and cpu.x[13] == 7
        assert cpu.x[14] == 48 and cpu.x[15] == 9

    def test_zero_register_immutable(self, machine):
        cpu = AsmCPU(machine)
        cpu.run(parse("li zero, 7\nret"))
        assert cpu.x[0] == 0

    def test_load_store(self, machine):
        ptr = machine.array([0, 42, 0])
        cpu = AsmCPU(machine)
        cpu.x[11] = ptr.addr + 4
        cpu.run(parse("""
            lw a0, (a1)
            addi a0, a0, 1
            sw a0, (a1)
            ret
        """))
        assert ptr.read(3).tolist() == [0, 43, 0]

    def test_branch_loop(self, machine):
        cpu = AsmCPU(machine)
        retired = cpu.run(parse("""
            li a0, 5
            li a1, 0
        loop:
            addi a1, a1, 2
            addi a0, a0, -1
            bnez a0, loop
            ret
        """))
        assert cpu.x[11] == 10
        assert retired == 2 + 5 * 3 + 1

    def test_fuel_limit(self, machine):
        cpu = AsmCPU(machine)
        with pytest.raises(ReproError, match="exceeded"):
            cpu.run(parse("spin: j spin"), max_steps=100)


class TestListing2:
    """The paper's assembly listing, executed verbatim."""

    @pytest.mark.parametrize("n", [1, 4, 13, 100])
    def test_vector_add_semantics(self, machine, rng, n):
        da = rng.integers(0, 2**32, n, dtype=np.uint32)
        db = rng.integers(0, 2**32, n, dtype=np.uint32)
        a, b = machine.array(da), machine.array(db)
        cpu = AsmCPU(machine)
        cpu.x[10], cpu.x[11], cpu.x[12] = n, a.addr, b.addr
        cpu.run(parse(LISTING2_VECTOR_ADD), entry="vector_add")
        assert np.array_equal(a.read(n), da + db)
        assert np.array_equal(b.read(n), db)  # b untouched

    def test_n_zero_early_exit(self, machine):
        cpu = AsmCPU(machine)
        cpu.x[10] = 0
        retired = cpu.run(parse(LISTING2_VECTOR_ADD), entry="vector_add")
        assert retired == 2  # beqz + ret

    def test_dynamic_count_is_retired_count(self, machine):
        """Every retired instruction is one dynamic instruction — the
        Spike metric, literally."""
        a = machine.array(np.zeros(13, dtype=np.uint32))
        b = machine.array(np.ones(13, dtype=np.uint32))
        cpu = AsmCPU(machine)
        cpu.x[10], cpu.x[11], cpu.x[12] = 13, a.addr, b.addr
        machine.reset_counters()
        retired = cpu.run(parse(LISTING2_VECTOR_ADD), entry="vector_add")
        assert machine.counters.total == retired
        # 13 elements at vl=4 -> 4 strips of 10 instructions + beqz + ret
        assert retired == 2 + 4 * 10

    def test_category_breakdown(self, machine):
        a = machine.array(np.zeros(8, dtype=np.uint32))
        b = machine.array(np.zeros(8, dtype=np.uint32))
        cpu = AsmCPU(machine)
        cpu.x[10], cpu.x[11], cpu.x[12] = 8, a.addr, b.addr
        machine.reset_counters()
        cpu.run(parse(LISTING2_VECTOR_ADD), entry="vector_add")
        c = machine.counters
        assert c[Cat.VCONFIG] == 2   # one vsetvli per strip
        assert c[Cat.VMEM] == 6      # 2 loads + 1 store per strip
        assert c[Cat.VARITH] == 2


class TestVectorISA:
    def test_broadcast_and_reduce(self, machine):
        cpu = AsmCPU(machine)
        cpu.run(parse("""
            li a0, 4
            vsetvli a1, a0, e32, m1, ta, mu
            li a2, 7
            vmv.v.x v1, a2
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a3, v3
            ret
        """))
        assert cpu.x[13] == 28

    def test_slideup_keeps_dest_lanes(self, machine):
        p = machine.array([1, 2, 3, 4])
        cpu = AsmCPU(machine)
        cpu.x[10], cpu.x[11] = 4, p.addr
        cpu.run(parse("""
            vsetvli a2, a0, e32, m1, ta, mu
            vle32.v v2, (a1)
            vmv.v.i v3, 0
            li a3, 1
            vslideup.vx v3, v2, a3
            vse32.v v3, (a1)
            ret
        """))
        assert p.read(4).tolist() == [0, 1, 2, 3]

    def test_lmul_group_alignment_enforced(self, machine):
        cpu = AsmCPU(machine)
        from repro.errors import RegisterError
        with pytest.raises(RegisterError):
            cpu.run(parse("""
                li a0, 8
                vsetvli a1, a0, e32, m2, ta, mu
                vmv.v.i v3, 0
                ret
            """))

    def test_vx_ops(self, machine):
        p = machine.array([0b1100, 0b1010, 0, 0])
        cpu = AsmCPU(machine)
        cpu.x[10], cpu.x[11] = 4, p.addr
        cpu.run(parse("""
            vsetvli a2, a0, e32, m1, ta, mu
            vle32.v v1, (a1)
            li a3, 2
            vsrl.vx v1, v1, a3
            vadd.vi v1, v1, 1
            vse32.v v1, (a1)
            ret
        """))
        assert p.read(4).tolist() == [4, 3, 1, 1]

"""Unit tests for the codegen cost presets and calibration plumbing."""

import pytest

from repro.rvv.codegen import IDEAL, PAPER, get_preset


class TestPresets:
    def test_ideal_flat_cost(self):
        assert IDEAL.op_cost() == 1
        assert IDEAL.op_cost(dest_undisturbed=True) == 1
        assert IDEAL.op_cost(masked=True) == 1

    def test_paper_expansions(self):
        assert PAPER.op_cost() == 1
        assert PAPER.op_cost(dest_undisturbed=True) == 2
        assert PAPER.op_cost(masked=True) == 2
        assert PAPER.op_cost(dest_undisturbed=True, masked=True) == 3

    def test_lookup(self):
        assert get_preset("ideal") is IDEAL
        assert get_preset("paper") is PAPER
        assert get_preset(PAPER) is PAPER

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_preset("gcc")


class TestPaperOverheads:
    """The fitted constants that make the tables land (derivations in
    repro/rvv/calibration.py). These pin the calibration against
    accidental edits — changing them invalidates EXPERIMENTS.md."""

    def test_p_add_strip(self):
        # 4 intrinsics + 5 scalars = 9/strip (Tables 2 and 7)
        assert PAPER.strip_overhead("p_add") == 5

    def test_seg_scan_decomposition(self):
        # 22 + 12*lg(vl) per strip (Tables 4, 5, 7)
        assert PAPER.strip_overhead("seg_plus_scan") == 10
        assert PAPER.inner_overhead("seg_plus_scan") == 4
        assert PAPER.prologue("seg_plus_scan") == 36  # +3 setup intrinsics = 39

    def test_plus_scan_decomposition(self):
        # 24 + 12*lg(vl) per strip (Table 3)
        assert PAPER.strip_overhead("plus_scan") == 18
        assert PAPER.inner_overhead("plus_scan") == 9
        assert PAPER.prologue("plus_scan") == 29

    def test_unknown_kernel_uses_defaults(self):
        assert PAPER.strip_overhead("not_a_kernel") == PAPER.default_strip
        assert PAPER.prologue("not_a_kernel") == PAPER.default_prologue


class TestIdealStructural:
    def test_strip_scales_with_arrays(self):
        assert IDEAL.strip_overhead("anything", n_arrays=1) == 4
        assert IDEAL.strip_overhead("anything", n_arrays=3) == 6

    def test_inner_and_prologue(self):
        assert IDEAL.inner_overhead("anything") == 3
        assert IDEAL.prologue("anything") == 2

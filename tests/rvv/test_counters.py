"""Unit tests for the dynamic-instruction counters."""

from repro.rvv.counters import Cat, Counters


class TestCounters:
    def test_add_and_total(self):
        c = Counters()
        c.add(Cat.VARITH, 3)
        c.add(Cat.SCALAR)
        assert c[Cat.VARITH] == 3
        assert c.total == 4

    def test_category_rollups(self):
        c = Counters()
        c.add(Cat.VMEM, 2)
        c.add(Cat.VMASK, 1)
        c.add(Cat.SCALAR, 5)
        c.add(Cat.SPILL, 7)
        assert c.vector_total == 3
        assert c.scalar_total == 5
        assert c.spill_total == 7
        assert c.total == 15

    def test_reset(self):
        c = Counters()
        c.add(Cat.VARITH)
        c.reset()
        assert c.total == 0

    def test_snapshot_is_immutable_copy(self):
        c = Counters()
        c.add(Cat.VARITH)
        snap = c.snapshot()
        c.add(Cat.VARITH, 9)
        assert snap.by_category[Cat.VARITH] == 1
        assert snap.total == 1

    def test_snapshot_delta(self):
        c = Counters()
        c.add(Cat.VMEM, 2)
        before = c.snapshot()
        c.add(Cat.VMEM, 3)
        c.add(Cat.SCALAR, 1)
        delta = c.snapshot() - before
        assert delta.by_category[Cat.VMEM] == 3
        assert delta.by_category[Cat.SCALAR] == 1
        assert delta.total == 4

    def test_as_dict(self):
        c = Counters()
        c.add(Cat.ALLOC, 4)
        d = c.as_dict()
        assert d["alloc"] == 4 and d["total"] == 4

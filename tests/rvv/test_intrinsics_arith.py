"""Unit tests for the arithmetic/logical intrinsics: semantics,
masking policies, modular wrap, instruction counting."""

import numpy as np
import pytest

from repro.errors import MaskError, VectorLengthError
from repro.rvv import Cat, RVVMachine, VMask, VReg
from repro.rvv.intrinsics import arith


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def v(*vals, dtype=np.uint32):
    return VReg(np.array(vals, dtype=dtype))


def mk(*bits):
    return VMask(np.array(bits, dtype=bool))


class TestBasicOps:
    def test_vadd_vv(self, m):
        out = arith.vadd_vv(m, v(1, 2, 3), v(10, 20, 30), 3)
        assert out.tolist() == [11, 22, 33]
        assert m.counters[Cat.VARITH] == 1

    def test_vadd_vx(self, m):
        assert arith.vadd_vx(m, v(1, 2), 5, 2).tolist() == [6, 7]

    def test_vsub_wraps(self, m):
        out = arith.vsub_vx(m, v(0), 1, 1)
        assert out.tolist() == [2**32 - 1]

    def test_vadd_wraps(self, m):
        out = arith.vadd_vx(m, v(2**32 - 1), 2, 1)
        assert out.tolist() == [1]

    def test_vrsub(self, m):
        assert arith.vrsub_vx(m, v(1, 2, 3), 10, 3).tolist() == [9, 8, 7]

    def test_vmul_low_half(self, m):
        out = arith.vmul_vx(m, v(2**31), 2, 1)
        assert out.tolist() == [0]

    def test_bitwise(self, m):
        assert arith.vand_vx(m, v(0b1101), 0b1010, 1).tolist() == [0b1000]
        assert arith.vor_vx(m, v(0b1101), 0b0010, 1).tolist() == [0b1111]
        assert arith.vxor_vv(m, v(0b1100), v(0b1010), 1).tolist() == [0b0110]

    def test_minmax_unsigned(self, m):
        big = 2**31 + 5  # would be negative as int32
        assert arith.vmaxu_vx(m, v(big), 7, 1).tolist() == [big]
        assert arith.vminu_vx(m, v(big), 7, 1).tolist() == [7]


class TestShifts:
    def test_vsll(self, m):
        assert arith.vsll_vx(m, v(1, 3), 2, 2).tolist() == [4, 12]

    def test_vsrl_logical(self, m):
        assert arith.vsrl_vx(m, v(2**31), 31, 1).tolist() == [1]

    def test_vsra_arithmetic(self, m):
        out = arith.vsra_vx(m, v(2**32 - 4), 1, 1)  # -4 >> 1 = -2
        assert out.tolist() == [2**32 - 2]

    def test_shift_amount_masked_to_sew(self, m):
        """RVV uses only the low lg2(SEW) shift bits: 33 acts as 1."""
        assert arith.vsll_vx(m, v(1), 33, 1).tolist() == [2]


class TestMasking:
    def test_undisturbed_policy(self, m):
        """maskedoff supplies masked-off lanes (§3.2)."""
        out = arith.vadd_vx(m, v(1, 2, 3), 10, 3,
                            mask=mk(1, 0, 1), maskedoff=v(7, 7, 7))
        assert out.tolist() == [11, 7, 13]

    def test_agnostic_policy_poisons(self, m):
        """Without maskedoff, masked-off lanes are modeled as all-ones
        so accidental dependence fails loudly."""
        out = arith.vadd_vx(m, v(1, 2), 10, 2, mask=mk(0, 1))
        assert out.tolist() == [2**32 - 1, 12]

    def test_masked_counts_expansion_under_paper(self):
        m = RVVMachine(vlen=128, codegen="paper")
        arith.vadd_vx(m, v(1), 1, 1, mask=mk(1), maskedoff=v(0))
        assert m.counters[Cat.VARITH] == 2  # op + register copy

    def test_mask_length_checked(self, m):
        with pytest.raises(MaskError):
            arith.vadd_vx(m, v(1, 2), 1, 2, mask=mk(1), maskedoff=v(0, 0))

    def test_maskedoff_dtype_checked(self, m):
        with pytest.raises(MaskError):
            arith.vadd_vx(m, v(1), 1, 1, mask=mk(1),
                          maskedoff=VReg(np.array([0], dtype=np.uint16)))


class TestMerge:
    def test_vmerge_vvm(self, m):
        out = arith.vmerge_vvm(m, mk(1, 0, 1), v(0, 0, 0), v(5, 6, 7), 3)
        assert out.tolist() == [5, 0, 7]

    def test_vmerge_vxm(self, m):
        out = arith.vmerge_vxm(m, mk(0, 1), v(3, 3), 9, 2)
        assert out.tolist() == [3, 9]


class TestValidation:
    def test_vl_mismatch(self, m):
        with pytest.raises(VectorLengthError):
            arith.vadd_vv(m, v(1, 2), v(1, 2, 3), 2)

    def test_negative_vl(self, m):
        with pytest.raises(VectorLengthError):
            arith.vadd_vx(m, v(1), 1, -1)

    def test_dtype_preserved(self, m):
        out = arith.vadd_vx(m, VReg(np.array([1], dtype=np.uint16)), 1, 1)
        assert out.dtype == np.uint16

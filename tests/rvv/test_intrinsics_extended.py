"""Unit tests for the extended intrinsic families: signed min/max and
compares, high/widening multiplies, the multiply-accumulate group, and
zero/sign extension."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.rvv import RVVMachine, VMask, VReg
from repro.rvv.intrinsics import arith, compare


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def v(*vals, dtype=np.uint32):
    return VReg(np.array(vals, dtype=dtype))


NEG1 = 2**32 - 1  # -1 as u32
NEG5 = 2**32 - 5


class TestSignedMinMax:
    def test_vmin_treats_bits_as_signed(self, m):
        assert arith.vmin_vv(m, v(NEG1, 3), v(2, 1), 2).tolist() == [NEG1, 1]

    def test_vmax_vx(self, m):
        out = arith.vmax_vx(m, v(NEG5, 7), -2, 2)
        assert out.tolist() == [2**32 - 2, 7]

    def test_unsigned_vs_signed_disagree(self, m):
        a, b = v(NEG1), v(1)
        assert arith.vminu_vv(m, a, b, 1).tolist() == [1]       # u: 2^32-1 > 1
        assert arith.vmin_vv(m, a, b, 1).tolist() == [NEG1]     # s: -1 < 1


class TestSignedCompares:
    def test_vmslt(self, m):
        assert compare.vmslt_vx(m, v(NEG1, 1), 0, 2).tolist() == [1, 0]

    def test_vmsle_vmsgt_complement(self, m):
        a, b = v(3, NEG5, 7), v(3, 2, NEG1)
        le = compare.vmsle_vv(m, a, b, 3).bits
        gt = compare.vmsgt_vv(m, a, b, 3).bits
        assert np.array_equal(le, ~gt)

    def test_signed_vs_unsigned_disagree(self, m):
        a = v(NEG1)
        assert compare.vmslt_vx(m, a, 5, 1).tolist() == [1]   # -1 < 5
        assert compare.vmsltu_vx(m, a, 5, 1).tolist() == [0]  # 2^32-1 > 5


class TestHighMultiply:
    def test_vmulhu(self, m):
        out = arith.vmulhu_vv(m, v(2**31), v(4), 1)
        assert out.tolist() == [2]  # (2^31 * 4) >> 32

    def test_vmulhu_small_is_zero(self, m):
        assert arith.vmulhu_vv(m, v(1000), v(1000), 1).tolist() == [0]

    def test_vmulh_signed(self, m):
        # (-1) * (-1) = 1 -> high half 0
        assert arith.vmulh_vv(m, v(NEG1), v(NEG1), 1).tolist() == [0]
        # (-1) * 1 = -1 -> high half all-ones
        assert arith.vmulh_vv(m, v(NEG1), v(1), 1).tolist() == [NEG1]


class TestMultiplyAccumulate:
    def test_vmacc_vv(self, m):
        out = arith.vmacc_vv(m, v(10, 20), v(2, 3), v(5, 5), 2)
        assert out.tolist() == [20, 35]

    def test_vmacc_vx(self, m):
        assert arith.vmacc_vx(m, v(1), 3, v(4), 1).tolist() == [13]

    def test_vmacc_wraps(self, m):
        out = arith.vmacc_vv(m, v(5), v(2**31), v(2), 1)
        assert out.tolist() == [5]

    def test_vnmsac(self, m):
        assert arith.vnmsac_vv(m, v(20), v(3), v(5), 1).tolist() == [5]

    def test_vmadd(self, m):
        # vd*a + b
        assert arith.vmadd_vv(m, v(3), v(4), v(1), 1).tolist() == [13]

    def test_vmacc_costs_dest_expansion_under_paper(self):
        from repro.rvv.counters import Cat
        m = RVVMachine(vlen=128, codegen="paper")
        arith.vmacc_vv(m, v(0), v(1), v(1), 1)
        assert m.counters[Cat.VARITH] == 2


class TestWidening:
    def test_vwaddu_no_wrap(self, m):
        out = arith.vwaddu_vv(m, v(2**32 - 1), v(2), 1)
        assert out.dtype == np.uint64
        assert out.tolist() == [2**32 + 1]

    def test_vwmulu(self, m):
        out = arith.vwmulu_vv(m, v(2**31), v(4), 1)
        assert out.tolist() == [2**33]

    def test_widen_u64_rejected(self, m):
        with pytest.raises(VectorLengthError):
            arith.vwaddu_vv(m, VReg(np.array([1], dtype=np.uint64)),
                            VReg(np.array([1], dtype=np.uint64)), 1)


class TestExtension:
    def test_vzext(self, m):
        src = VReg(np.array([0xFF], dtype=np.uint16))
        out = arith.vzext_vf2(m, src, 1)
        assert out.dtype == np.uint32 and out.tolist() == [0xFF]

    def test_vzext_high_bit_not_sign(self, m):
        src = VReg(np.array([0x8000], dtype=np.uint16))
        assert arith.vzext_vf2(m, src, 1).tolist() == [0x8000]

    def test_vsext_propagates_sign(self, m):
        src = VReg(np.array([0xFFFF], dtype=np.uint16))  # -1 as i16
        out = arith.vsext_vf2(m, src, 1)
        assert out.tolist() == [2**32 - 1]

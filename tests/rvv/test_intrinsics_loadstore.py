"""Unit tests for the memory intrinsics, including the indexed store
behind the permute primitive (Listing 5)."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.rvv import Cat, RVVMachine, VMask, VReg
from repro.rvv.intrinsics import loadstore as ls


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def v(*vals, dtype=np.uint32):
    return VReg(np.array(vals, dtype=dtype))


class TestUnitStride:
    def test_load_store_roundtrip(self, m):
        p = m.array([1, 2, 3, 4])
        val = ls.vle(m, p, 3)
        assert val.tolist() == [1, 2, 3]
        ls.vse(m, p + 1, val, 3)
        assert p.read(4).tolist() == [1, 1, 2, 3]

    def test_counts_vmem(self, m):
        p = m.array([1])
        ls.vse(m, p, ls.vle(m, p, 1), 1)
        assert m.counters[Cat.VMEM] == 2

    def test_masked_store_leaves_holes(self, m):
        p = m.array([9, 9, 9])
        ls.vse(m, p, v(1, 2, 3), 3, mask=VMask(np.array([1, 0, 1], dtype=bool)))
        assert p.read(3).tolist() == [1, 9, 3]

    def test_vl_mismatch(self, m):
        p = m.array([1, 2])
        with pytest.raises(VectorLengthError):
            ls.vse(m, p, v(1, 2, 3), 2)


class TestStrided:
    def test_vlse(self, m):
        p = m.array(list(range(8)))
        out = ls.vlse(m, p, 8, 3)  # every other u32
        assert out.tolist() == [0, 2, 4]

    def test_vsse(self, m):
        p = m.array([0] * 8)
        ls.vsse(m, p, 8, v(5, 6, 7), 3)
        assert p.read(8).tolist() == [5, 0, 6, 0, 7, 0, 0, 0]

    def test_bad_stride(self, m):
        p = m.array([1, 2])
        with pytest.raises(VectorLengthError):
            ls.vlse(m, p, 3, 1)


class TestIndexed:
    def test_vsuxei_scatter(self, m):
        """The permute primitive's instruction: byte-offset scatter."""
        p = m.array([0, 0, 0, 0])
        ls.vsuxei(m, p, v(12, 0, 8), v(1, 2, 3), 3)
        assert p.read(4).tolist() == [2, 0, 3, 1]
        assert m.counters[Cat.VMEM_INDEXED] == 1

    def test_vluxei_gather(self, m):
        p = m.array([10, 20, 30, 40])
        out = ls.vluxei(m, p, v(12, 4), 2)
        assert out.tolist() == [40, 20]

    def test_masked_scatter(self, m):
        p = m.array([0, 0])
        ls.vsuxei(m, p, v(0, 4), v(7, 8), 2,
                  mask=VMask(np.array([0, 1], dtype=bool)))
        assert p.read(2).tolist() == [0, 8]

    def test_operand_length_check(self, m):
        p = m.array([0, 0])
        with pytest.raises(VectorLengthError):
            ls.vsuxei(m, p, v(0), v(1, 2), 2)

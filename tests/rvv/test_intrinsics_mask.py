"""Unit tests for the mask intrinsics — the instructions carrying the
paper's key tricks (viota for enumerate, vmsbf for the carry mask)."""

import numpy as np
import pytest

from repro.rvv import Cat, RVVMachine, VMask, VReg
from repro.rvv.intrinsics import compare, mask as mo


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def mk(*bits):
    return VMask(np.array(bits, dtype=bool))


class TestSetBeforeFirst:
    def test_basic(self, m):
        """All lanes strictly before the first set lane (§5.1)."""
        assert mo.vmsbf_m(m, mk(0, 0, 1, 0, 1), 5).tolist() == [1, 1, 0, 0, 0]

    def test_first_lane_set(self, m):
        assert mo.vmsbf_m(m, mk(1, 0, 0), 3).tolist() == [0, 0, 0]

    def test_no_set_lane_is_all_ones(self, m):
        """No head flag in the strip -> every lane takes the carry."""
        assert mo.vmsbf_m(m, mk(0, 0, 0), 3).tolist() == [1, 1, 1]

    def test_counts(self, m):
        mo.vmsbf_m(m, mk(1), 1)
        assert m.counters[Cat.VMASK] == 1


class TestSetIncludingOnlyFirst:
    def test_vmsif(self, m):
        assert mo.vmsif_m(m, mk(0, 1, 0, 1), 4).tolist() == [1, 1, 0, 0]
        assert mo.vmsif_m(m, mk(0, 0), 2).tolist() == [1, 1]

    def test_vmsof(self, m):
        assert mo.vmsof_m(m, mk(0, 1, 0, 1), 4).tolist() == [0, 1, 0, 0]
        assert mo.vmsof_m(m, mk(0, 0), 2).tolist() == [0, 0]


class TestViota:
    def test_exclusive_count(self, m):
        """viota = exclusive prefix count of set lanes (Listing 8)."""
        out = mo.viota_m(m, mk(1, 0, 1, 1, 0), 5)
        assert out.tolist() == [0, 1, 1, 2, 3]

    def test_none_set(self, m):
        assert mo.viota_m(m, mk(0, 0, 0), 3).tolist() == [0, 0, 0]

    def test_dtype(self, m):
        out = mo.viota_m(m, mk(1, 1), 2, dtype=np.uint16)
        assert out.dtype == np.uint16

    def test_single_lane(self, m):
        assert mo.viota_m(m, mk(1), 1).tolist() == [0]


class TestPopAndFirst:
    def test_vcpop(self, m):
        assert mo.vcpop_m(m, mk(1, 0, 1, 1), 4) == 3
        assert mo.vcpop_m(m, mk(0, 0), 2) == 0

    def test_vfirst(self, m):
        assert mo.vfirst_m(m, mk(0, 0, 1, 1), 4) == 2
        assert mo.vfirst_m(m, mk(0, 0), 2) == -1

    def test_vid(self, m):
        assert mo.vid_v(m, 4).tolist() == [0, 1, 2, 3]


class TestMaskLogical:
    def test_and_or_xor(self, m):
        a, b = mk(1, 1, 0, 0), mk(1, 0, 1, 0)
        assert mo.vmand_mm(m, a, b, 4).tolist() == [1, 0, 0, 0]
        assert mo.vmor_mm(m, a, b, 4).tolist() == [1, 1, 1, 0]
        assert mo.vmxor_mm(m, a, b, 4).tolist() == [0, 1, 1, 0]

    def test_andn_nand_not(self, m):
        a, b = mk(1, 1, 0), mk(1, 0, 1)
        assert mo.vmandn_mm(m, a, b, 3).tolist() == [0, 1, 0]
        assert mo.vmnand_mm(m, a, b, 3).tolist() == [0, 1, 1]
        assert mo.vmnot_m(m, a, 3).tolist() == [0, 0, 1]

    def test_set_clr(self, m):
        assert mo.vmset_m(m, 3).tolist() == [1, 1, 1]
        assert mo.vmclr_m(m, 3).tolist() == [0, 0, 0]


class TestCompareToMask:
    def test_vmseq_vx(self, m):
        va = VReg(np.array([1, 0, 1, 2], dtype=np.uint32))
        assert compare.vmseq_vx(m, va, 1, 4).tolist() == [1, 0, 1, 0]

    def test_vmsne_vx(self, m):
        va = VReg(np.array([0, 3, 0], dtype=np.uint32))
        assert compare.vmsne_vx(m, va, 0, 3).tolist() == [0, 1, 0]

    def test_unsigned_compares(self, m):
        big = 2**31 + 1
        va = VReg(np.array([big, 5], dtype=np.uint32))
        assert compare.vmsltu_vx(m, va, 10, 2).tolist() == [0, 1]
        assert compare.vmsgtu_vx(m, va, 10, 2).tolist() == [1, 0]

    def test_vv_forms(self, m):
        a = VReg(np.array([1, 5, 3], dtype=np.uint32))
        b = VReg(np.array([1, 3, 5], dtype=np.uint32))
        assert compare.vmseq_vv(m, a, b, 3).tolist() == [1, 0, 0]
        assert compare.vmsleu_vv(m, a, b, 3).tolist() == [1, 0, 1]
        assert compare.vmsgeu_vv(m, a, b, 3).tolist() == [1, 1, 0]

"""Unit tests for the permutation intrinsics — the in-register scan's
machinery (Figure 1/4)."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.rvv import Cat, RVVMachine, VMask, VReg
from repro.rvv.intrinsics import move, permutation as pm


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def v(*vals, dtype=np.uint32):
    return VReg(np.array(vals, dtype=dtype))


def mk(*bits):
    return VMask(np.array(bits, dtype=bool))


class TestSlideup:
    def test_semantics(self, m):
        """Lanes below the offset keep the destination's values — the
        paper slides a zero vector in as the + identity (Listing 6)."""
        dest = v(0, 0, 0, 0)
        src = v(1, 2, 3, 4)
        assert pm.vslideup_vx(m, dest, src, 1, 4).tolist() == [0, 1, 2, 3]
        assert pm.vslideup_vx(m, dest, src, 2, 4).tolist() == [0, 0, 1, 2]

    def test_offset_zero_copies(self, m):
        assert pm.vslideup_vx(m, v(9, 9), v(1, 2), 0, 2).tolist() == [1, 2]

    def test_offset_past_vl(self, m):
        assert pm.vslideup_vx(m, v(7, 7), v(1, 2), 5, 2).tolist() == [7, 7]

    def test_dest_cost_expansion(self):
        m = RVVMachine(vlen=128, codegen="paper")
        pm.vslideup_vx(m, v(0), v(1), 1, 1)
        assert m.counters[Cat.VPERM] == 2  # copy + slide under PAPER

    def test_masked(self, m):
        out = pm.vslideup_vx(m, v(0, 0, 0), v(1, 2, 3), 1, 3, mask=mk(1, 0, 1))
        assert out.tolist() == [0, 0, 2]

    def test_negative_offset(self, m):
        with pytest.raises(VectorLengthError):
            pm.vslideup_vx(m, v(0), v(1), -1, 1)


class TestSlidedown:
    def test_semantics(self, m):
        assert pm.vslidedown_vx(m, v(1, 2, 3, 4), 1, 4).tolist() == [2, 3, 4, 0]

    def test_extract_last(self, m):
        """vslidedown by vl-1 + vmv.x.s reads the last lane — the
        exclusive-scan carry extraction."""
        out = pm.vslidedown_vx(m, v(5, 6, 7), 2, 3)
        assert move.vmv_x_s(m, out) == 7


class TestSlide1:
    def test_slide1up(self, m):
        assert pm.vslide1up_vx(m, v(1, 2, 3), 99, 3).tolist() == [99, 1, 2]

    def test_slide1down(self, m):
        assert pm.vslide1down_vx(m, v(1, 2, 3), 99, 3).tolist() == [2, 3, 99]

    def test_single_lane(self, m):
        assert pm.vslide1up_vx(m, v(4), 9, 1).tolist() == [9]


class TestGatherCompress:
    def test_vrgather(self, m):
        out = pm.vrgather_vv(m, v(10, 20, 30), v(2, 0, 1), 3)
        assert out.tolist() == [30, 10, 20]

    def test_vrgather_out_of_range_zero(self, m):
        out = pm.vrgather_vv(m, v(10, 20), v(5, 1), 2)
        assert out.tolist() == [0, 20]

    def test_vcompress(self, m):
        out = pm.vcompress_vm(m, mk(1, 0, 1, 1), v(1, 2, 3, 4), 4)
        assert out.tolist() == [1, 3, 4, 0]

    def test_vcompress_none(self, m):
        assert pm.vcompress_vm(m, mk(0, 0), v(1, 2), 2).tolist() == [0, 0]


class TestMoves:
    def test_broadcast(self, m):
        assert move.vmv_v_x(m, 7, 3).tolist() == [7, 7, 7]

    def test_broadcast_wraps(self, m):
        assert move.vmv_v_x(m, 2**32 + 3, 1).tolist() == [3]

    def test_vmv_v_v(self, m):
        src = v(1, 2)
        out = move.vmv_v_v(m, src, 2)
        assert out.tolist() == [1, 2] and out.data is not src.data

    def test_vmv_s_x_keeps_other_lanes(self, m):
        """Listing 10 line 16: force a head flag at lane 0 only."""
        out = move.vmv_s_x(m, v(5, 6, 7), 1, 3)
        assert out.tolist() == [1, 6, 7]

    def test_vmv_x_s(self, m):
        assert move.vmv_x_s(m, v(42, 1)) == 42

    def test_vundefined_is_none(self):
        assert move.vundefined() is None

"""Unit tests for the reduction intrinsics."""

import numpy as np
import pytest

from repro.rvv import RVVMachine, VMask, VReg
from repro.rvv.intrinsics import reduction as red


@pytest.fixture
def m():
    return RVVMachine(vlen=128)


def v(*vals, dtype=np.uint32):
    return VReg(np.array(vals, dtype=dtype))


def mk(*bits):
    return VMask(np.array(bits, dtype=bool))


class TestReductions:
    def test_sum_with_init(self, m):
        assert red.vredsum_vs(m, v(1, 2, 3), 10, 3) == 16

    def test_sum_wraps(self, m):
        assert red.vredsum_vs(m, v(2**32 - 1), 2, 1) == 1

    def test_max(self, m):
        assert red.vredmaxu_vs(m, v(3, 9, 1), 5, 3) == 9
        assert red.vredmaxu_vs(m, v(3), 50, 1) == 50

    def test_min(self, m):
        assert red.vredminu_vs(m, v(3, 9), 100, 2) == 3
        assert red.vredminu_vs(m, v(3, 9), 1, 2) == 1

    def test_and_or_xor(self, m):
        assert red.vredand_vs(m, v(0b1110, 0b1011), 0xFFFFFFFF, 2) == 0b1010
        assert red.vredor_vs(m, v(0b0001, 0b0100), 0b1000, 2) == 0b1101
        assert red.vredxor_vs(m, v(0b11, 0b01), 0, 2) == 0b10

    def test_masked(self, m):
        assert red.vredsum_vs(m, v(1, 100, 3), 0, 3, mask=mk(1, 0, 1)) == 4

    def test_masked_all_off(self, m):
        assert red.vredsum_vs(m, v(1, 2), 7, 2, mask=mk(0, 0)) == 7

    def test_counts_one(self, m):
        red.vredsum_vs(m, v(1), 0, 1)
        assert m.counters.total == 1

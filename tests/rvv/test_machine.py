"""Unit tests for the RVV machine: configuration, counting, heap."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VectorLengthError
from repro.rvv import Cat, RVVMachine, strips
from repro.rvv.types import LMUL, SEW
from repro.scalar.malloc_model import GlibcMallocModel


class TestVsetvl:
    def test_caps_at_vlmax(self):
        m = RVVMachine(vlen=128)
        assert m.vsetvl(100) == 4  # 128/32 = 4 lanes of u32

    def test_returns_avl_when_small(self):
        m = RVVMachine(vlen=1024)
        assert m.vsetvl(5) == 5

    def test_updates_csrs(self):
        m = RVVMachine(vlen=256)
        m.vsetvl(3, SEW.E16, LMUL.M2)
        assert m.vl == 3
        assert m.vtype.sew is SEW.E16 and m.vtype.lmul is LMUL.M2

    def test_counts_one_instruction(self):
        m = RVVMachine(vlen=128)
        m.vsetvl(4)
        assert m.counters[Cat.VCONFIG] == 1
        assert m.counters.total == 1

    def test_vsetvlmax(self):
        m = RVVMachine(vlen=512)
        assert m.vsetvlmax(SEW.E32, LMUL.M4) == 64

    def test_vlmax_query_free(self):
        m = RVVMachine(vlen=512)
        m.vlmax(SEW.E32, LMUL.M8)
        assert m.counters.total == 0

    def test_negative_avl(self):
        m = RVVMachine(vlen=128)
        with pytest.raises(VectorLengthError):
            m.vsetvl(-1)

    def test_lmul_scales_vlmax(self):
        m = RVVMachine(vlen=128)
        assert m.vsetvl(1000, SEW.E32, LMUL.M8) == 32


class TestMachineConstruction:
    def test_bad_vlen(self):
        with pytest.raises(ConfigurationError):
            RVVMachine(vlen=96)
        with pytest.raises(ConfigurationError):
            RVVMachine(vlen=32)

    def test_codegen_preset_resolution(self):
        assert RVVMachine(codegen="paper").codegen.name == "paper"
        with pytest.raises(ValueError):
            RVVMachine(codegen="llvm99")


class TestCountingHooks:
    def test_region_delta(self):
        m = RVVMachine(vlen=128)
        m.scalar(5)
        with m.region() as r:
            m.vsetvl(4)
            m.scalar(2)
        assert r.total == 3
        assert r.by_category[Cat.SCALAR] == 2

    def test_op_expansion_paper(self):
        m = RVVMachine(vlen=128, codegen="paper")
        m.op(Cat.VPERM, dest_undisturbed=True)
        assert m.counters[Cat.VPERM] == 2

    def test_op_expansion_ideal(self):
        m = RVVMachine(vlen=128, codegen="ideal")
        m.op(Cat.VPERM, dest_undisturbed=True, masked=True)
        assert m.counters[Cat.VPERM] == 1

    def test_reset(self):
        m = RVVMachine(vlen=128)
        m.scalar(3)
        m.reset_counters()
        assert m.counters.total == 0


class TestHeap:
    def test_malloc_free_charges_alloc(self):
        m = RVVMachine(vlen=128, malloc_model=GlibcMallocModel())
        addr = m.malloc(64)
        m.free(addr)
        assert m.counters[Cat.ALLOC] == 90 + 60

    def test_large_malloc_pays_pages(self):
        model = GlibcMallocModel()
        m = RVVMachine(vlen=128, malloc_model=model)
        m.malloc(256 * 1024)
        pages = 256 * 1024 // 4096
        assert m.counters[Cat.ALLOC] == model.mmap_base + pages * model.per_page

    def test_default_model_free(self):
        m = RVVMachine(vlen=128)
        m.free(m.malloc(1024 * 1024))
        assert m.counters[Cat.ALLOC] == 0

    def test_array_helper(self):
        m = RVVMachine(vlen=128)
        p = m.array([1, 2, 3])
        assert p.read(3).tolist() == [1, 2, 3]
        assert p.dtype == np.uint32


class TestStrips:
    def test_exact_division(self):
        assert list(strips(12, 4)) == [4, 4, 4]

    def test_remainder(self):
        assert list(strips(13, 4)) == [4, 4, 4, 1]

    def test_single_short(self):
        assert list(strips(3, 32)) == [3]

    def test_empty(self):
        assert list(strips(0, 4)) == []

    def test_negative_rejected(self):
        with pytest.raises(VectorLengthError):
            list(strips(-1, 4))

    def test_bad_vlmax(self):
        with pytest.raises(ConfigurationError):
            list(strips(4, 0))

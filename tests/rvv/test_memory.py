"""Unit tests for simulated memory, pointers, and the allocator."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.rvv.memory import Allocator, Memory, Pointer


class TestMemory:
    def test_zero_initialized(self):
        mem = Memory(1024)
        assert not mem.load(0, 1024, np.uint8).any()

    def test_store_load_roundtrip(self):
        mem = Memory(1024)
        data = np.arange(10, dtype=np.uint32)
        mem.store(16, data)
        assert np.array_equal(mem.load(16, 10, np.uint32), data)

    def test_view_is_live(self):
        mem = Memory(1024)
        view = mem.view(0, 4, np.uint32)
        view[2] = 7
        assert mem.load(8, 1, np.uint32)[0] == 7

    def test_out_of_bounds(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.view(60, 2, np.uint32)
        with pytest.raises(MemoryError_):
            mem.view(-4, 1, np.uint32)

    def test_misaligned(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.view(2, 1, np.uint32)

    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            Memory(0)

    def test_little_endian_layout(self):
        mem = Memory(64)
        mem.store(0, np.array([0x01020304], dtype=np.uint32))
        assert mem.load(0, 4, np.uint8).tolist() == [0x04, 0x03, 0x02, 0x01]


class TestScatterGather:
    def test_gather(self):
        mem = Memory(256)
        mem.store(0, np.arange(16, dtype=np.uint32))
        offsets = np.array([0, 8, 4], dtype=np.uint32)
        assert mem.gather(0, offsets, np.uint32).tolist() == [0, 2, 1]

    def test_scatter(self):
        mem = Memory(256)
        mem.scatter(0, np.array([4, 12], dtype=np.uint32),
                    np.array([7, 9], dtype=np.uint32))
        assert mem.load(0, 4, np.uint32).tolist() == [0, 7, 0, 9]

    def test_scatter_last_writer_wins(self):
        mem = Memory(256)
        mem.scatter(0, np.array([0, 0], dtype=np.uint32),
                    np.array([1, 2], dtype=np.uint32))
        assert mem.load(0, 1, np.uint32)[0] == 2

    def test_gather_empty(self):
        mem = Memory(64)
        assert mem.gather(0, np.empty(0, np.uint32), np.uint32).size == 0

    def test_misaligned_indexed(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.gather(0, np.array([2], dtype=np.uint32), np.uint32)


class TestPointer:
    def test_element_arithmetic(self):
        mem = Memory(1024)
        p = Pointer(mem, 0, np.uint32)
        assert (p + 3).addr == 12

    def test_scalar_indexing(self):
        mem = Memory(1024)
        p = Pointer(mem, 0, np.uint32)
        p.write(np.array([5, 6, 7], dtype=np.uint32))
        assert p[1] == 6
        p[1] = 42
        assert p.read(3).tolist() == [5, 42, 7]

    def test_cast(self):
        mem = Memory(1024)
        p = Pointer(mem, 0, np.uint32)
        p.write(np.array([0x01020304], dtype=np.uint32))
        assert p.cast(np.uint8).read(4).tolist() == [4, 3, 2, 1]


class TestAllocator:
    def test_alignment(self):
        heap = Allocator(Memory(4096))
        a = heap.malloc(5)
        b = heap.malloc(5)
        assert a % 16 == 0 and b % 16 == 0 and b >= a + 16

    def test_free_and_reuse(self):
        heap = Allocator(Memory(4096))
        a = heap.malloc(64)
        heap.free(a)
        assert heap.malloc(64) == a  # first-fit reuses the hole

    def test_coalescing(self):
        heap = Allocator(Memory(4096))
        a = heap.malloc(64)
        b = heap.malloc(64)
        rest = heap.malloc(4096 - 128)
        heap.free(a)
        heap.free(b)
        heap.free(rest)
        # after coalescing everything, a full-size block must fit again
        assert heap.malloc(4096 - 16) is not None

    def test_double_free(self):
        heap = Allocator(Memory(4096))
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(MemoryError_):
            heap.free(a)

    def test_oom(self):
        heap = Allocator(Memory(1024))
        with pytest.raises(MemoryError_):
            heap.malloc(4096)

    def test_live_bytes(self):
        heap = Allocator(Memory(4096))
        a = heap.malloc(100)
        assert heap.live_bytes == 112  # rounded to 16
        heap.free(a)
        assert heap.live_bytes == 0

    def test_alloc_array(self):
        heap = Allocator(Memory(4096))
        p = heap.alloc_array(8, np.uint32)
        p.write(np.arange(8, dtype=np.uint32))
        assert p.read(8).tolist() == list(range(8))

    def test_negative_malloc(self):
        heap = Allocator(Memory(1024))
        with pytest.raises(MemoryError_):
            heap.malloc(-1)

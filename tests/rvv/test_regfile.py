"""Unit tests for the architectural register file and LMUL grouping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RegisterError
from repro.rvv.regfile import MASK_REG, NUM_REGS, RegisterFile
from repro.rvv.types import LMUL, SEW


class TestGroupRules:
    def test_alignment_required(self):
        rf = RegisterFile(128)
        rf.check_group(8, LMUL.M8)
        with pytest.raises(RegisterError):
            rf.check_group(4, LMUL.M8)
        with pytest.raises(RegisterError):
            rf.check_group(3, LMUL.M2)

    def test_out_of_range(self):
        rf = RegisterFile(128)
        with pytest.raises(RegisterError):
            rf.check_group(32, LMUL.M1)
        with pytest.raises(RegisterError):
            rf.check_group(-1, LMUL.M1)

    def test_groups_enumeration(self):
        assert RegisterFile.groups(LMUL.M8) == [0, 8, 16, 24]
        assert len(RegisterFile.groups(LMUL.M1)) == NUM_REGS

    def test_mask_overlap(self):
        """A masked op's destination may not overlap v0 (the mask)."""
        rf = RegisterFile(128)
        with pytest.raises(RegisterError):
            rf.check_no_mask_overlap(0, LMUL.M8)  # v0-7 contains v0
        rf.check_no_mask_overlap(8, LMUL.M8)

    def test_bad_vlen(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(100)


class TestElementAccess:
    def test_write_read_roundtrip(self):
        rf = RegisterFile(128)
        rf.write(4, np.arange(4, dtype=np.uint32), SEW.E32, LMUL.M1)
        assert rf.read(4, SEW.E32, LMUL.M1).tolist() == [0, 1, 2, 3]

    def test_group_capacity(self):
        rf = RegisterFile(128)
        data = np.arange(8, dtype=np.uint32)  # 2 regs of 4 elements
        rf.write(4, data, SEW.E32, LMUL.M2)
        assert rf.read(4, SEW.E32, LMUL.M2).tolist() == list(range(8))
        # the group's second register is v5
        assert rf.read(5, SEW.E32, LMUL.M1).tolist() == [4, 5, 6, 7]

    def test_overflow_rejected(self):
        rf = RegisterFile(128)
        with pytest.raises(RegisterError):
            rf.write(0, np.arange(5, dtype=np.uint32), SEW.E32, LMUL.M1)

    def test_partial_read_vl(self):
        rf = RegisterFile(128)
        rf.write(2, np.array([9, 8, 7, 6], dtype=np.uint32), SEW.E32, LMUL.M1)
        assert rf.read(2, SEW.E32, LMUL.M1, vl=2).tolist() == [9, 8]
        with pytest.raises(RegisterError):
            rf.read(2, SEW.E32, LMUL.M1, vl=5)

    def test_tail_agnostic_poison(self):
        """Tail-agnostic writes fill the tail with 1s so tests relying
        on tail values fail loudly."""
        rf = RegisterFile(128)
        rf.write(0, np.array([1], dtype=np.uint32), SEW.E32, LMUL.M1,
                 tail_undisturbed=False)
        tail = rf.read(0, SEW.E32, LMUL.M1)[1:]
        assert (tail == np.iinfo(np.uint32).max).all()


class TestMaskLayout:
    def test_roundtrip(self):
        rf = RegisterFile(128)
        mask = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=bool)
        rf.write_mask(mask)
        assert rf.read_mask(8).tolist() == mask.tolist()

    def test_packed_one_bit_per_element(self):
        """RVV packs masks 1 bit per element: 8 mask bits occupy one
        byte of v0 regardless of SEW."""
        rf = RegisterFile(128)
        rf.write_mask(np.ones(8, dtype=bool))
        assert rf.read(MASK_REG, SEW.E8, LMUL.M1)[0] == 0xFF

    def test_too_long(self):
        rf = RegisterFile(128)
        with pytest.raises(RegisterError):
            rf.write_mask(np.ones(129, dtype=bool))
        with pytest.raises(RegisterError):
            rf.read_mask(129)


class TestWholeRegisterMoves:
    def test_spill_roundtrip(self):
        rf = RegisterFile(128)
        rf.write(8, np.arange(8, dtype=np.uint32), SEW.E32, LMUL.M2)
        saved = rf.whole_store(8, LMUL.M2)
        rf.write(8, np.zeros(8, dtype=np.uint32), SEW.E32, LMUL.M2)
        rf.whole_load(8, LMUL.M2, saved)
        assert rf.read(8, SEW.E32, LMUL.M2).tolist() == list(range(8))

    def test_size_check(self):
        rf = RegisterFile(128)
        with pytest.raises(RegisterError):
            rf.whole_load(0, LMUL.M2, np.zeros(3, dtype=np.uint8))

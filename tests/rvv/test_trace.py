"""Tests for the execution-trace recorder."""

import numpy as np
import pytest

from repro import SVM, RVVMachine
from repro.rvv.counters import Cat
from repro.rvv.trace import TraceRecorder, trace


class TestRecorder:
    def test_records_events(self):
        m = RVVMachine(vlen=128)
        with trace(m) as t:
            m.vsetvl(4)
            m.scalar(3)
        assert t.total == 4
        assert [e.category for e in t.events] == [Cat.VCONFIG, Cat.SCALAR]

    def test_counters_still_accumulate(self):
        m = RVVMachine(vlen=128)
        m.scalar(5)
        with trace(m):
            m.scalar(2)
        m.scalar(1)
        assert m.counters.total == 8

    def test_detach_restores_original_object(self):
        m = RVVMachine(vlen=128)
        original = m.counters
        with trace(m):
            m.scalar(1)
        assert m.counters is original

    def test_double_attach_rejected(self):
        m = RVVMachine(vlen=128)
        t = TraceRecorder(m).attach()
        with pytest.raises(RuntimeError):
            t.attach()
        t.detach()
        with pytest.raises(RuntimeError):
            t.detach()

    def test_summary_by_category(self):
        m = RVVMachine(vlen=128)
        svm = SVM(m, mode="strict")
        a = svm.array([1, 2, 3, 4, 5])
        with trace(m) as t:
            svm.p_add(a, 1)
        s = t.summary()
        assert s["vconfig"] == 2  # two strips at vl=4
        assert s["vmem"] == 4
        assert t.total == m.counters.total

    def test_histogram_shows_expansions(self):
        m = RVVMachine(vlen=128, codegen="paper")
        svm = SVM(m, mode="strict")
        a = svm.array([1, 2, 3, 4])
        with trace(m) as t:
            svm.plus_scan(a)
        # the paper preset expands slideups to 2 instructions
        assert any(cat == Cat.VPERM and n == 2 for (cat, n) in t.histogram())

    def test_diff_isolates_spill_traffic(self):
        def traced(lmul):
            m = RVVMachine(vlen=1024, codegen="paper")
            svm = SVM(m, mode="strict")
            a = svm.array(np.zeros(512, dtype=np.uint32))
            f = svm.array(np.zeros(512, dtype=np.uint32))
            with trace(m) as t:
                svm.seg_plus_scan(a, f, lmul=lmul)
            return t

        from repro.rvv.types import LMUL
        d = traced(LMUL.M8).diff(traced(LMUL.M4))
        assert d["spill"] > 0

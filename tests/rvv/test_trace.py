"""Tests for the execution-trace recorder."""

import numpy as np
import pytest

from repro import SVM, RVVMachine
from repro.rvv.counters import Cat
from repro.rvv.trace import TraceRecorder, trace


class TestRecorder:
    def test_records_events(self):
        m = RVVMachine(vlen=128)
        with trace(m) as t:
            m.vsetvl(4)
            m.scalar(3)
        assert t.total == 4
        assert [e.category for e in t.events] == [Cat.VCONFIG, Cat.SCALAR]

    def test_counters_still_accumulate(self):
        m = RVVMachine(vlen=128)
        m.scalar(5)
        with trace(m):
            m.scalar(2)
        m.scalar(1)
        assert m.counters.total == 8

    def test_detach_restores_original_object(self):
        m = RVVMachine(vlen=128)
        original = m.counters
        with trace(m):
            m.scalar(1)
        assert m.counters is original

    def test_double_attach_rejected(self):
        m = RVVMachine(vlen=128)
        t = TraceRecorder(m).attach()
        with pytest.raises(RuntimeError):
            t.attach()
        t.detach()
        with pytest.raises(RuntimeError):
            t.detach()

    def test_summary_by_category(self):
        m = RVVMachine(vlen=128)
        svm = SVM(m, mode="strict")
        a = svm.array([1, 2, 3, 4, 5])
        with trace(m) as t:
            svm.p_add(a, 1)
        s = t.summary()
        assert s["vconfig"] == 2  # two strips at vl=4
        assert s["vmem"] == 4
        assert t.total == m.counters.total

    def test_histogram_shows_expansions(self):
        m = RVVMachine(vlen=128, codegen="paper")
        svm = SVM(m, mode="strict")
        a = svm.array([1, 2, 3, 4])
        with trace(m) as t:
            svm.plus_scan(a)
        # the paper preset expands slideups to 2 instructions
        assert any(cat == Cat.VPERM and n == 2 for (cat, n) in t.histogram())

    def test_diff_isolates_spill_traffic(self):
        def traced(lmul):
            m = RVVMachine(vlen=1024, codegen="paper")
            svm = SVM(m, mode="strict")
            a = svm.array(np.zeros(512, dtype=np.uint32))
            f = svm.array(np.zeros(512, dtype=np.uint32))
            with trace(m) as t:
                svm.seg_plus_scan(a, f, lmul=lmul)
            return t

        from repro.rvv.types import LMUL
        d = traced(LMUL.M8).diff(traced(LMUL.M4))
        assert d["spill"] > 0


class TestSharedCounters:
    """The tap mechanism fixes the old subclass-and-swap recorder: any
    number of recorders can attach — including to machines sharing one
    counters object — without perturbing the shared totals."""

    def test_two_recorders_one_machine(self):
        m = RVVMachine(vlen=128)
        m.scalar(1)
        with trace(m) as outer:
            m.scalar(2)
            with trace(m) as inner:
                m.scalar(4)
            m.scalar(8)
        m.scalar(16)
        # each recorder sees exactly its attached window, once
        assert inner.total == 4
        assert outer.total == 2 + 4 + 8
        # and the machine's totals were never double-counted or lost
        assert m.counters.total == 1 + 2 + 4 + 8 + 16

    def test_two_machines_sharing_counters(self):
        a = RVVMachine(vlen=128)
        b = RVVMachine(vlen=128)
        b.counters = a.counters  # shared totals (the old failure mode)
        with trace(a) as ta, trace(b) as tb:
            a.scalar(3)
            b.scalar(5)
        # per-machine streams stay separate...
        assert ta.total == 3
        assert tb.total == 5
        # ...while the shared object holds the exact combined total
        assert a.counters.total == 8
        assert b.counters.total == 8

    def test_totals_exact_at_every_moment(self):
        m = RVVMachine(vlen=128)
        with trace(m):
            m.scalar(7)
            # visible immediately through the machine, mid-attach
            assert m.counters.total == 7
            snap = m.counters.snapshot()
            assert snap.by_category[Cat.SCALAR] == 7

    def test_detach_order_independent(self):
        m = RVVMachine(vlen=128)
        original = m.counters
        t1 = TraceRecorder(m).attach()
        t2 = TraceRecorder(m).attach()
        m.scalar(1)
        t1.detach()  # first-attached detaches first
        m.scalar(2)
        t2.detach()
        assert m.counters is original
        assert t1.total == 1
        assert t2.total == 3
        assert m.counters.total == 3

"""Unit tests for the RVV configuration types."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rvv.types import (
    LMUL,
    SEW,
    MaskPolicy,
    TailPolicy,
    VType,
    dtype_for_sew,
    sew_for_dtype,
    vlmax_for,
)


class TestSEW:
    def test_values(self):
        assert [int(s) for s in SEW] == [8, 16, 32, 64]

    def test_dtype_mapping_unsigned(self):
        assert dtype_for_sew(SEW.E8) == np.uint8
        assert dtype_for_sew(SEW.E32) == np.uint32
        assert dtype_for_sew(SEW.E64) == np.uint64

    def test_dtype_mapping_signed(self):
        assert dtype_for_sew(SEW.E16, signed=True) == np.int16

    def test_dtype_roundtrip(self):
        for sew in SEW:
            assert sew_for_dtype(dtype_for_sew(sew)) == sew
            assert sew_for_dtype(dtype_for_sew(sew, signed=True)) == sew

    def test_bad_sew(self):
        with pytest.raises(ConfigurationError):
            dtype_for_sew(24)  # type: ignore[arg-type]

    def test_bad_dtype(self):
        with pytest.raises(ConfigurationError):
            sew_for_dtype(np.dtype(np.float32))


class TestLMUL:
    def test_values(self):
        assert [int(m) for m in LMUL] == [1, 2, 4, 8]

    def test_from_int(self):
        assert LMUL(4) is LMUL.M4

    def test_invalid(self):
        with pytest.raises(ValueError):
            LMUL(3)


class TestVlmax:
    @pytest.mark.parametrize("vlen,sew,lmul,expected", [
        (128, SEW.E32, LMUL.M1, 4),
        (1024, SEW.E32, LMUL.M1, 32),
        (1024, SEW.E32, LMUL.M8, 256),
        (256, SEW.E8, LMUL.M1, 32),
        (128, SEW.E64, LMUL.M2, 4),
    ])
    def test_formula(self, vlen, sew, lmul, expected):
        """vlmax = VLEN / SEW * LMUL (§2.1, §3.3)."""
        assert vlmax_for(vlen, sew, lmul) == expected

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            vlmax_for(100, SEW.E32, LMUL.M1)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            vlmax_for(0, SEW.E32, LMUL.M1)


class TestVType:
    def test_normalizes_ints(self):
        vt = VType(32, 4)
        assert vt.sew is SEW.E32 and vt.lmul is LMUL.M4

    def test_defaults(self):
        vt = VType(SEW.E32, LMUL.M1)
        assert vt.tail is TailPolicy.AGNOSTIC
        assert vt.mask is MaskPolicy.UNDISTURBED

    def test_vlmax(self):
        assert VType(SEW.E32, LMUL.M2).vlmax(512) == 32

    def test_dtype(self):
        assert VType(SEW.E16, LMUL.M1).dtype == np.uint16

    def test_frozen(self):
        vt = VType(SEW.E32, LMUL.M1)
        with pytest.raises(AttributeError):
            vt.sew = SEW.E8  # type: ignore[misc]

    def test_str(self):
        assert str(VType(SEW.E32, LMUL.M2)) == "e32m2,ta,mu"

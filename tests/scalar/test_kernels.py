"""Unit tests for the sequential baselines: semantics against naive
oracles and the exact linear cost forms from the paper's tables."""

import numpy as np
import pytest

from repro.errors import SegmentError, VectorLengthError
from repro.scalar import (
    ScalarMachine,
    enumerate_baseline,
    get_flags_baseline,
    max_scan_baseline,
    min_scan_baseline,
    p_add_baseline,
    p_select_baseline,
    permute_baseline,
    plus_scan_baseline,
    seg_plus_scan_baseline,
    seg_max_scan_baseline,
    segmented_cumsum,
    segmented_reduce_numpy,
)
from tests.oracles import seg_scan_oracle


@pytest.fixture
def sm():
    return ScalarMachine()


class TestCostForms:
    """The paper's baseline columns are exactly linear; these pin the
    forms measured from Tables 2-4."""

    @pytest.mark.parametrize("n", [1, 100, 10**4, 10**6])
    def test_p_add_6n_plus_1(self, sm, n):
        p_add_baseline(sm, np.zeros(n, dtype=np.uint32), 1)
        assert sm.total == 6 * n + 1

    @pytest.mark.parametrize("n", [100, 10**4, 10**6])
    def test_plus_scan_6n_plus_26(self, sm, n):
        plus_scan_baseline(sm, np.zeros(n, dtype=np.uint32))
        assert sm.total == 6 * n + 26

    @pytest.mark.parametrize("n", [100, 10**4, 10**6])
    def test_seg_scan_11n_plus_24(self, sm, n):
        seg_plus_scan_baseline(sm, np.zeros(n, dtype=np.uint32),
                               np.zeros(n, dtype=np.uint32))
        assert sm.total == 11 * n + 24

    def test_counts_accumulate(self, sm):
        a = np.zeros(10, dtype=np.uint32)
        p_add_baseline(sm, a, 1)
        p_add_baseline(sm, a, 1)
        assert sm.total == 2 * 61


class TestElementwiseSemantics:
    def test_p_add(self, sm):
        a = np.array([1, 2, 3], dtype=np.uint32)
        p_add_baseline(sm, a, 10)
        assert a.tolist() == [11, 12, 13]

    def test_p_add_wraps(self, sm):
        a = np.array([2**32 - 1], dtype=np.uint32)
        p_add_baseline(sm, a, 2)
        assert a.tolist() == [1]

    def test_p_select(self, sm):
        flags = np.array([1, 0, 1], dtype=np.uint32)
        a = np.array([10, 20, 30], dtype=np.uint32)
        b = np.array([1, 2, 3], dtype=np.uint32)
        p_select_baseline(sm, flags, a, b)
        assert b.tolist() == [10, 2, 30]

    def test_p_select_length_check(self, sm):
        with pytest.raises(VectorLengthError):
            p_select_baseline(sm, np.zeros(2, np.uint32),
                              np.zeros(3, np.uint32), np.zeros(3, np.uint32))

    def test_bad_flags(self, sm):
        with pytest.raises(SegmentError):
            p_select_baseline(sm, np.array([2], np.uint32),
                              np.zeros(1, np.uint32), np.zeros(1, np.uint32))


class TestScanSemantics:
    def test_plus_scan(self, sm):
        a = np.array([1, 2, 3, 4], dtype=np.uint32)
        plus_scan_baseline(sm, a)
        assert a.tolist() == [1, 3, 6, 10]

    def test_max_min_scans(self, sm):
        a = np.array([3, 1, 7, 2], dtype=np.uint32)
        max_scan_baseline(sm, a)
        assert a.tolist() == [3, 3, 7, 7]
        b = np.array([3, 1, 7, 2], dtype=np.uint32)
        min_scan_baseline(sm, b)
        assert b.tolist() == [3, 1, 1, 1]

    def test_seg_plus_scan(self, sm):
        a = np.array([1, 2, 3, 4, 5], dtype=np.uint32)
        flags = np.array([0, 0, 1, 0, 1], dtype=np.uint32)
        seg_plus_scan_baseline(sm, a, flags)
        assert a.tolist() == [1, 3, 3, 7, 5]

    def test_seg_max_scan(self, sm):
        a = np.array([3, 9, 1, 5], dtype=np.uint32)
        flags = np.array([0, 0, 1, 0], dtype=np.uint32)
        seg_max_scan_baseline(sm, a, flags)
        assert a.tolist() == [3, 9, 1, 5]


class TestSegmentedCumsumTrick:
    """segmented_cumsum (the fast path's engine) vs the per-element
    oracle, including modular wrap."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        a = rng.integers(0, 2**32, n, dtype=np.uint32)
        flags = (rng.random(n) < 0.2).astype(np.uint32)
        expect = seg_scan_oracle(a, flags, lambda x, y: x + y, 0)
        assert np.array_equal(segmented_cumsum(a, flags), expect)

    def test_empty(self):
        assert segmented_cumsum(np.empty(0, np.uint32), np.empty(0, np.uint32)).size == 0

    def test_reduce_numpy_matches(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 100, 50, dtype=np.uint32)
        flags = (rng.random(50) < 0.3).astype(np.uint32)
        got = segmented_reduce_numpy(a, flags, np.add)
        assert np.array_equal(got, segmented_cumsum(a, flags))


class TestDerivedBaselines:
    def test_enumerate(self, sm):
        flags = np.array([1, 0, 1, 1, 0], dtype=np.uint32)
        dst = np.zeros(5, dtype=np.uint32)
        count = enumerate_baseline(sm, flags, dst, set_bit=True)
        assert dst.tolist() == [0, 1, 1, 2, 3]
        assert count == 3

    def test_enumerate_zeros(self, sm):
        flags = np.array([1, 0, 0], dtype=np.uint32)
        dst = np.zeros(3, dtype=np.uint32)
        count = enumerate_baseline(sm, flags, dst, set_bit=False)
        assert dst.tolist() == [0, 0, 1]
        assert count == 2

    def test_permute(self, sm):
        src = np.array([10, 20, 30], dtype=np.uint32)
        dst = np.zeros(3, dtype=np.uint32)
        permute_baseline(sm, src, dst, np.array([2, 0, 1], dtype=np.uint32))
        assert dst.tolist() == [20, 30, 10]

    def test_get_flags(self, sm):
        src = np.array([0b101, 0b010], dtype=np.uint32)
        flags = np.zeros(2, dtype=np.uint32)
        get_flags_baseline(sm, src, flags, 1)
        assert flags.tolist() == [0, 1]

    def test_get_flags_bit_range(self, sm):
        with pytest.raises(VectorLengthError):
            get_flags_baseline(sm, np.zeros(1, np.uint32),
                               np.zeros(1, np.uint32), 32)

    def test_unknown_kernel(self):
        sm = ScalarMachine(costs={})
        with pytest.raises(KeyError):
            sm.charge_loop("p_add", 10)

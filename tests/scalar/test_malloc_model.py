"""Unit tests for the heap-allocation cost model (Table 1's mmap
jump)."""

from repro.scalar.malloc_model import (
    MMAP_THRESHOLD,
    PAGE_SIZE,
    GlibcMallocModel,
    ZeroMallocModel,
)


class TestGlibcModel:
    def test_small_fast_path(self):
        model = GlibcMallocModel()
        assert model.malloc_cost(64) == model.small_malloc
        assert model.free_cost(64) == model.small_free

    def test_threshold_boundary(self):
        model = GlibcMallocModel()
        below = model.malloc_cost(MMAP_THRESHOLD - 1)
        at = model.malloc_cost(MMAP_THRESHOLD)
        assert below == model.small_malloc
        assert at > 10 * below

    def test_per_page_scaling(self):
        model = GlibcMallocModel()
        one_mb = model.malloc_cost(1 << 20)
        two_mb = model.malloc_cost(2 << 20)
        assert two_mb - one_mb == (1 << 20) // PAGE_SIZE * model.per_page

    def test_partial_page_rounds_up(self):
        model = GlibcMallocModel()
        assert (model.malloc_cost(MMAP_THRESHOLD + 1)
                == model.mmap_base + (MMAP_THRESHOLD // PAGE_SIZE + 1) * model.per_page)

    def test_large_free_flat(self):
        model = GlibcMallocModel()
        assert model.free_cost(1 << 20) == model.munmap_base
        assert model.free_cost(64 << 20) == model.munmap_base

    def test_zero_size(self):
        assert GlibcMallocModel().malloc_cost(0) > 0  # malloc(0) still runs code

    def test_table1_jump_magnitude(self):
        """The per-element excess at N=1e5 implied by Table 1
        (~116/element over 32 bit-iterations with 2 large allocations
        each) should be within 25% of the model's prediction."""
        model = GlibcMallocModel()
        n = 10**5
        per_iter = model.malloc_cost(4 * n) + model.free_cost(4 * n)
        predicted_excess = 32 * 2 * per_iter / n
        paper_excess = (195 - 80)  # instr/element, Table 1's jump
        assert abs(predicted_excess - paper_excess) / paper_excess < 0.25


class TestZeroModel:
    def test_always_zero(self):
        model = ZeroMallocModel()
        assert model.malloc_cost(1 << 30) == 0
        assert model.free_cost(1 << 30) == 0

"""Unit tests for the instrumented qsort cost model (Table 1's
baseline)."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.scalar import QSORT_COSTS, ScalarMachine, instrumented_qsort, qsort_baseline
from repro.scalar.qsort import QsortCosts, SortStats


class TestSortingCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 2, 8, 9, 100, 1000])
    def test_random(self, n):
        data = np.random.default_rng(n).integers(0, 2**32, n, dtype=np.uint32)
        out, _ = instrumented_qsort(data)
        assert np.array_equal(out, np.sort(data))

    def test_already_sorted(self):
        data = np.arange(500, dtype=np.uint32)
        out, _ = instrumented_qsort(data)
        assert np.array_equal(out, data)

    def test_reverse_sorted(self):
        data = np.arange(500, dtype=np.uint32)[::-1].copy()
        out, _ = instrumented_qsort(data)
        assert np.array_equal(out, np.sort(data))

    def test_all_equal(self):
        """Three-way partitioning keeps duplicates linear, not
        quadratic."""
        data = np.full(10_000, 7, dtype=np.uint32)
        out, stats = instrumented_qsort(data)
        assert np.array_equal(out, data)
        assert stats.comparisons < 20 * 10_000

    def test_few_distinct(self):
        data = np.random.default_rng(3).integers(0, 4, 5000, dtype=np.uint32)
        out, _ = instrumented_qsort(data)
        assert np.array_equal(out, np.sort(data))

    def test_input_not_mutated(self):
        data = np.array([3, 1, 2], dtype=np.uint32)
        instrumented_qsort(data)
        assert data.tolist() == [3, 1, 2]

    def test_rejects_2d(self):
        with pytest.raises(VectorLengthError):
            instrumented_qsort(np.zeros((2, 2), dtype=np.uint32))


class TestStats:
    def test_nlogn_scaling(self):
        c = {}
        for n in (1000, 8000):
            data = np.random.default_rng(0).integers(0, 2**32, n, dtype=np.uint32)
            _, stats = instrumented_qsort(data)
            c[n] = stats.comparisons
        # 8x the input should cost ~8 * lg-ratio more comparisons, and
        # certainly between 8x (linear) and 64x (quadratic)
        assert 8 <= c[8000] / c[1000] < 16

    def test_empty_stats(self):
        _, stats = instrumented_qsort(np.empty(0, dtype=np.uint32))
        assert stats.comparisons == 0 and stats.partitions == 0

    def test_stats_accumulate(self):
        s = SortStats(comparisons=1, swaps=2)
        s += SortStats(comparisons=3, partitions=4)
        assert s.comparisons == 4 and s.swaps == 2 and s.partitions == 4


class TestCostModel:
    def test_dynamic_count_formula(self):
        costs = QsortCosts(10, 1, 100, 1, 2, 5)
        stats = SortStats(comparisons=3, swaps=2, partitions=1,
                          insertion_moves=4, n=10)
        assert costs.dynamic_count(stats) == 30 + 2 + 100 + 4 + 20 + 5

    def test_baseline_charges_machine(self):
        sm = ScalarMachine()
        data = np.random.default_rng(1).integers(0, 2**32, 100, dtype=np.uint32)
        out = qsort_baseline(sm, data)
        assert np.array_equal(out, np.sort(data))
        assert sm.total > 0

    def test_monotone_in_n(self):
        counts = []
        for n in (100, 1000, 10000):
            sm = ScalarMachine()
            qsort_baseline(sm, np.random.default_rng(0).integers(
                0, 2**32, n, dtype=np.uint32))
            counts.append(sm.total)
        assert counts[0] < counts[1] < counts[2]

    def test_table1_magnitude(self):
        """~26 dynamic instructions per comparison at N=10^4 — the
        signature the fit targets (paper: 3,470,344)."""
        sm = ScalarMachine()
        qsort_baseline(sm, np.random.default_rng(42).integers(
            0, 2**32, 10**4, dtype=np.uint32))
        assert 3.0e6 < sm.total < 4.0e6

    def test_default_costs_plausible(self):
        assert 15 <= QSORT_COSTS.per_comparison <= 30

"""CLI surface: ``repro ops --json`` and the ``repro serve`` daemon
run as a real subprocess (announce line, client round trip, graceful
exit, stats JSON)."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

import numpy as np

from repro.cli import main
from repro.serve import ServeClient


def test_ops_json_is_machine_readable(capsys):
    assert main(["ops", "--json"]) == 0
    matrix = json.loads(capsys.readouterr().out)
    assert isinstance(matrix, list) and len(matrix) >= 20
    by_op = {row["op"]: row for row in matrix}
    assert by_op["p_add"]["batch2d"] is True
    assert by_op["pack"]["data_dependent"] is True
    assert by_op["pack"]["batch2d"] is False
    for row in matrix:
        assert {"op", "category", "composite", "strict", "fast", "fuse",
                "codegen", "batch2d", "data_dependent", "aliases"} \
            <= set(row)


def test_ops_table_still_renders(capsys):
    assert main(["ops"]) == 0
    out = capsys.readouterr().out
    assert "OpSpec registry" in out


def test_serve_cli_subprocess_round_trip(tmp_path):
    stats_path = tmp_path / "stats.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--flush-ms", "5", "--max-requests", "3",
         "--stats-json", str(stats_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    try:
        announce = proc.stdout.readline()
        m = re.match(r"REPRO_SERVE listening addr=([\d.]+):(\d+)", announce)
        assert m, announce
        host, port = m.group(1), int(m.group(2))
        with ServeClient(host=host, port=port) as c:
            assert c.ping()
            outs = c.execute_many([
                {"pipeline": "scan", "data": [1, 2, 3]},
                {"pipeline": "elementwise", "data": [1, 2]},
                {"pipeline": "chain_scan", "data": [5, 5]},
            ])
        assert [o.tolist() for o in outs] == [
            [1, 3, 6], [5, 7], [40, 80]]  # ((5+10)*3)^5 = 40, scanned
        # --max-requests 3 reached: the daemon drains and exits cleanly
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr
        assert "served 3/3 requests" in stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    stats = json.loads(stats_path.read_text())
    assert stats["requests"]["ok"] == 3
    assert stats["coalescing"]["flushes"] >= 1
    assert stats["instructions"] > 0

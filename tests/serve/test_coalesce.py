"""Window semantics of the coalescer, driven by a fake clock.

The coalescer is event-loop-free state, so every transition — fill
flush, deadline flush, drain — is deterministic under test.
"""

from __future__ import annotations

import pytest

from repro.serve import BucketKey, Coalescer, PendingRequest


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


KEY = BucketKey("chain_scan", 64, "uint32", "auto")
OTHER = BucketKey("scan", 64, "uint32", "auto")


def req(i: int = 0) -> PendingRequest:
    return PendingRequest(data=i, enqueued_at=0.0, future=None)


def test_fill_flush_at_max_rows():
    clock = FakeClock()
    co = Coalescer(flush_ms=5.0, max_rows=3, clock=clock)
    assert co.add(KEY, req(0)) is None
    assert co.add(KEY, req(1)) is None
    assert co.pending_rows == 2
    flush = co.add(KEY, req(2))
    assert flush is not None and flush.reason == "rows"
    assert flush.key == KEY and flush.rows == 3
    assert [r.data for r in flush.requests] == [0, 1, 2]
    # the bucket left the window entirely
    assert co.pending_rows == 0 and co.deadline() is None


def test_deadline_set_by_first_arrival_never_extended():
    clock = FakeClock(t=10.0)
    co = Coalescer(flush_ms=2.0, max_rows=100, clock=clock)
    co.add(KEY, req())
    deadline = co.deadline()
    assert deadline == pytest.approx(10.0 + 0.002)
    clock.t = 10.001  # later arrival must NOT push the deadline out
    co.add(KEY, req())
    assert co.deadline() == deadline


def test_expired_pops_only_due_buckets():
    clock = FakeClock(t=0.0)
    co = Coalescer(flush_ms=2.0, max_rows=100, clock=clock)
    co.add(KEY, req(0))
    clock.t = 0.001
    co.add(OTHER, req(1))
    assert co.expired() == []           # nothing due yet
    clock.t = 0.002                      # KEY due, OTHER not
    flushes = co.expired()
    assert [f.key for f in flushes] == [KEY]
    assert flushes[0].reason == "deadline" and flushes[0].rows == 1
    assert co.pending_rows == 1          # OTHER still waiting
    clock.t = 0.003
    assert [f.key for f in co.expired()] == [OTHER]
    assert co.deadline() is None


def test_separate_keys_separate_buckets():
    co = Coalescer(flush_ms=5.0, max_rows=2, clock=FakeClock())
    keys = [
        BucketKey("chain_scan", 64, "uint32", "auto"),
        BucketKey("chain_scan", 65, "uint32", "auto"),     # length differs
        BucketKey("chain_scan", 64, "uint64", "auto"),     # dtype differs
        BucketKey("chain_scan", 64, "uint32", "strict"),   # mode differs
        BucketKey("scan", 64, "uint32", "auto"),           # pipeline differs
    ]
    for k in keys:
        assert co.add(k, req()) is None
    assert co.pending_rows == len(keys)
    # a second row only fills its own bucket
    flush = co.add(keys[0], req())
    assert flush is not None and flush.key == keys[0]
    assert co.pending_rows == len(keys) - 1


def test_drain_pops_everything():
    clock = FakeClock()
    co = Coalescer(flush_ms=1000.0, max_rows=100, clock=clock)
    co.add(KEY, req(0))
    co.add(KEY, req(1))
    co.add(OTHER, req(2))
    flushes = co.drain()
    assert sorted(f.key for f in flushes) == sorted([KEY, OTHER])
    assert all(f.reason == "drain" for f in flushes)
    assert sum(f.rows for f in flushes) == 3
    assert co.pending_rows == 0 and co.drain() == []


def test_refilled_bucket_gets_fresh_deadline():
    clock = FakeClock(t=0.0)
    co = Coalescer(flush_ms=2.0, max_rows=2, clock=clock)
    co.add(KEY, req())
    co.add(KEY, req())                   # fills -> flushes
    clock.t = 5.0
    co.add(KEY, req())                   # new bucket, new deadline
    assert co.deadline() == pytest.approx(5.002)


@pytest.mark.parametrize("kwargs", [
    {"flush_ms": 0}, {"flush_ms": -1.0}, {"max_rows": 0},
])
def test_invalid_window_config_rejected(kwargs):
    with pytest.raises(ValueError):
        Coalescer(**kwargs)

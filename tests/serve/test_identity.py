"""The serving identity gate (ISSUE 6 acceptance criterion).

A coalesced multi-client workload — mixed pipelines, mixed lengths,
mixed dtypes, including pack pipelines (``filter``, ``radix_pack``)
on the masked ragged path and strict-mode requests that force the
per-row loop fallback — must return results AND per-category
dynamic-instruction counters bit-identical to executing the same
requests sequentially through direct SVM calls. For pack pipelines
"results" means the defined survivor prefix (the served ``valid``
lanes); lanes past a row's kept count are undefined under the
single-row semantics too and never leave the daemon.

The sequential oracle below is the definitional tier: one plain
``svm.lazy()`` capture-and-run per request, nothing shared, no
batching. The daemon (coalescing window + 2D bucket execution +
worker pool with a shared warm plan cache) must be indistinguishable
from it, instruction counter by instruction counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServeConfig, ServerThread
from repro.serve.protocol import DTYPES, PIPELINES
from repro.svm import SVM

SEED = 77

#: Survivor count per pack pipeline (the ``valid`` oracle): filter
#: keeps the [2^14, 3*2^14) range; radix_pack splits by bit 0 (a pure
#: permutation) then keeps values < 2^15.
PACK_KEPT = {
    "filter": lambda d: int(((d >= 2**14) & (d < 3 * 2**14)).sum()),
    "radix_pack": lambda d: int((d < 2**15).sum()),
}


def mixed_workload() -> list[dict]:
    """Requests spanning every dispatch regime the daemon serves."""
    rng = np.random.default_rng(SEED)

    def mk(n, dtype=np.uint32):
        return rng.integers(0, 2**16, n, dtype=dtype)

    reqs: list[dict] = []
    # fused chain + scan, large: the 2D coalesced fast path
    reqs += [{"pipeline": "chain_scan", "data": mk(4096)} for _ in range(8)]
    # same pipeline, small: below the fast threshold -> loop
    reqs += [{"pipeline": "chain_scan", "data": mk(192)} for _ in range(4)]
    # pure elementwise and bare scan buckets
    reqs += [{"pipeline": "elementwise", "data": mk(3000)} for _ in range(5)]
    reqs += [{"pipeline": "scan", "data": mk(2500)} for _ in range(5)]
    # permutation plan (index + rsub + back_permute) on the 2D path
    reqs += [{"pipeline": "reverse", "data": mk(2048)} for _ in range(4)]
    # pack: masked 2D on the ragged path, per-row charge correction
    reqs += [{"pipeline": "filter", "data": mk(3000)} for _ in range(5)]
    # split radix pass + pack: both scalar futures threaded per row
    reqs += [{"pipeline": "radix_pack", "data": mk(2600)} for _ in range(4)]
    # strict-mode requests: loop fallback by decree
    reqs += [{"pipeline": "chain_scan", "data": mk(4096), "mode": "strict"}
             for _ in range(3)]
    # a second dtype: its own buckets end to end
    reqs += [{"pipeline": "chain_scan", "data": mk(2048, np.uint64),
              "dtype": "uint64"} for _ in range(3)]
    return reqs


def run_sequential(requests: list[dict], cfg: ServeConfig):
    """The oracle: each request as one direct SVM capture-and-run."""
    svm = SVM(vlen=cfg.vlen, codegen=cfg.codegen, mode=cfg.mode)
    outputs = []
    for r in requests:
        svm.mode = r.get("mode") or cfg.mode
        arr = np.asarray(r["data"], dtype=DTYPES[r.get("dtype", "uint32")])
        data = svm.array(arr, dtype=arr.dtype)
        with svm.lazy() as lz:
            out = PIPELINES[r["pipeline"]](lz, data)
        outputs.append(out.to_numpy())
        svm.free(out)
        if out is not data:
            svm.free(data)
    counters = {c.value: int(n) for c, n
                in svm.machine.counters.snapshot().by_category.items()}
    return outputs, counters


@pytest.mark.parametrize("workers", [1, 3])
def test_coalesced_serving_is_bit_identical_to_sequential(workers):
    requests = mixed_workload()
    cfg = ServeConfig(max_rows=8, flush_ms=25.0, workers=workers)
    with ServerThread(cfg) as st:
        served = st.submit_many(requests)
        stats = st.stats()

    failures = [r for r in served if isinstance(r, BaseException)]
    assert not failures, failures

    expected_outputs, expected_counters = run_sequential(requests, cfg)

    # results: bit-identical, request by request (pack pipelines on
    # their defined survivor prefix, cross-checked against the numpy
    # predicate oracle)
    for i, (got, want) in enumerate(zip(served, expected_outputs)):
        pipe = requests[i]["pipeline"]
        assert got.output.dtype == want.dtype, pipe
        if pipe in PACK_KEPT:
            arr = np.asarray(requests[i]["data"])
            assert got.valid == PACK_KEPT[pipe](arr) == len(got.output), pipe
            assert np.array_equal(got.output, want[:got.valid]), pipe
        else:
            assert got.valid is None, pipe
            assert np.array_equal(got.output, want), pipe

    # counters: the summed per-category dynamic-instruction counts
    # across the worker pool equal the sequential totals exactly
    assert stats["counters"] == dict(sorted(expected_counters.items()))
    assert stats["instructions"] == sum(expected_counters.values())

    # and the workload genuinely exercised all three dispatch paths
    paths = stats["coalescing"]["paths"]
    assert paths["2d"] >= 1 and paths["ragged"] >= 1 and paths["loop"] >= 1
    assert stats["coalescing"]["ratio"] > 1.0


def test_identity_holds_under_forced_modes():
    """strict vs fast mode give the same results (counters differ by
    design across modes — each mode's serve counters must match that
    mode's sequential counters)."""
    rng = np.random.default_rng(SEED + 1)
    data = [rng.integers(0, 2**16, 2048, dtype=np.uint32)
            for _ in range(4)]
    outputs = {}
    for mode in ("strict", "fast"):
        requests = [{"pipeline": "chain_scan", "data": d, "mode": mode}
                    for d in data]
        cfg = ServeConfig(max_rows=4, flush_ms=10_000.0)
        with ServerThread(cfg) as st:
            served = st.submit_many(requests)
            stats = st.stats()
        seq_out, seq_counters = run_sequential(requests, cfg)
        for got, want in zip(served, seq_out):
            assert np.array_equal(got.output, want)
        assert stats["counters"] == dict(sorted(seq_counters.items()))
        outputs[mode] = [r.output for r in served]
    for a, b in zip(outputs["strict"], outputs["fast"]):
        assert np.array_equal(a, b)

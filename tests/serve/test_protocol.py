"""NDJSON framing, execute validation, and error-code mapping."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.ir import EngineError
from repro.errors import (
    ServeClosedError,
    ServeOverloadedError,
    ServeProtocolError,
)
from repro.serve import protocol


def test_encode_decode_round_trip():
    obj = {"id": 7, "op": "execute", "pipeline": "scan", "data": [1, 2, 3]}
    frame = protocol.encode(obj)
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    assert protocol.decode(frame) == obj


def test_encode_is_compact():
    assert b" " not in protocol.encode({"a": 1, "b": [2, 3]})


@pytest.mark.parametrize("frame", [
    b"not json\n",
    b"{truncated\n",
    b"[1, 2, 3]\n",      # array, not object
    b'"string"\n',
    b"\xff\xfe\n",
])
def test_decode_rejects_malformed(frame):
    with pytest.raises(ServeProtocolError):
        protocol.decode(frame)


def test_decode_rejects_oversized_frame():
    frame = b'{"pad": "' + b"x" * protocol.MAX_FRAME + b'"}\n'
    with pytest.raises(ServeProtocolError, match="exceeds"):
        protocol.decode(frame)


def test_validate_execute_happy_path():
    pipeline, arr, dtype, mode = protocol.validate_execute(
        {"pipeline": "chain_scan", "data": [1, 2, 3]})
    assert pipeline == "chain_scan"
    assert arr.dtype == np.uint32 and arr.tolist() == [1, 2, 3]
    assert dtype == "uint32" and mode is None


def test_validate_execute_uint64_and_mode():
    _, arr, dtype, mode = protocol.validate_execute(
        {"pipeline": "scan", "data": [2**40], "dtype": "uint64",
         "mode": "strict"})
    assert arr.dtype == np.uint64 and dtype == "uint64" and mode == "strict"


@pytest.mark.parametrize("req,match", [
    ({"pipeline": "nope", "data": [1]}, "unknown pipeline"),
    ({"data": [1]}, "unknown pipeline"),
    ({"pipeline": "scan", "data": [1], "dtype": "float32"},
     "unsupported dtype"),
    ({"pipeline": "scan", "data": [1], "mode": "turbo"}, "unsupported mode"),
    ({"pipeline": "scan", "data": []}, "non-empty"),
    ({"pipeline": "scan", "data": "1,2,3"}, "non-empty"),
    ({"pipeline": "scan"}, "non-empty"),
    ({"pipeline": "scan", "data": [[1, 2], [3, 4]]}, "1-D|bad 'data'"),
    ({"pipeline": "scan", "data": ["x"]}, "bad 'data'"),
])
def test_validate_execute_rejects(req, match):
    with pytest.raises(ServeProtocolError, match=match):
        protocol.validate_execute(req)


def test_error_response_codes():
    cases = [
        (ServeOverloadedError(4), "overloaded"),
        (ServeProtocolError("bad"), "protocol"),
        (ServeClosedError("draining"), "closed"),
        (EngineError("boom"), "internal"),
        (RuntimeError("boom"), "internal"),
    ]
    for exc, code in cases:
        resp = protocol.error_response(3, exc)
        assert resp["id"] == 3 and resp["ok"] is False
        assert resp["code"] == code and resp["error"] == str(exc)
        json.dumps(resp)  # must be wire-serializable


def test_register_pipeline_rejects_duplicate():
    with pytest.raises(ValueError, match="already registered"):
        protocol.register_pipeline("scan", lambda lz, data: data)


def test_default_pipelines_cover_dispatch_regimes():
    # fused chain, pure elementwise, bare scan, permutation, pack
    assert set(protocol.PIPELINES) >= {
        "chain_scan", "elementwise", "scan", "reverse", "filter"}

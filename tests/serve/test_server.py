"""Daemon behavior: coalescing, backpressure, shutdown, stats, sockets."""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ServeClosedError,
    ServeOverloadedError,
    ServeProtocolError,
)
from repro.serve import (
    ServeClient,
    ServeConfig,
    Server,
    ServerThread,
)

RNG = np.random.default_rng(2024)


def rows(count: int, n: int, dtype=np.uint32) -> list[np.ndarray]:
    return [RNG.integers(0, 2**16, n, dtype=dtype) for _ in range(count)]


# ---------------------------------------------------------------------------
# coalescing through the in-process API
# ---------------------------------------------------------------------------

def test_fill_flush_coalesces_all_rows():
    data = rows(8, 4096)
    with ServerThread(ServeConfig(max_rows=8, flush_ms=10_000.0)) as st:
        res = st.submit_many(
            [{"pipeline": "chain_scan", "data": r} for r in data])
        stats = st.stats()
    assert all(r.flush_rows == 8 for r in res)
    assert all(r.path == "2d" for r in res)
    assert stats["coalescing"]["flushes"] == 1
    assert stats["coalescing"]["rows"] == 8
    assert stats["coalescing"]["ratio"] == 8.0
    assert stats["requests"] == {
        "total": 8, "ok": 8, "rejected": 0, "errors": 0, "inflight": 0}


def test_deadline_flush_bounds_latency():
    data = rows(3, 1024)
    with ServerThread(ServeConfig(max_rows=64, flush_ms=5.0)) as st:
        res = st.submit_many(
            [{"pipeline": "scan", "data": r} for r in data])
    # fewer rows than the fill trigger: the window deadline flushed them
    assert all(r.flush_rows == 3 for r in res)


def test_buckets_split_by_key():
    with ServerThread(ServeConfig(max_rows=64, flush_ms=5.0)) as st:
        res = st.submit_many([
            {"pipeline": "scan", "data": rows(1, 256)[0]},
            {"pipeline": "scan", "data": rows(1, 256)[0]},
            {"pipeline": "scan", "data": rows(1, 512)[0]},
            {"pipeline": "chain_scan", "data": rows(1, 256)[0]},
            {"pipeline": "scan", "data": rows(1, 256)[0], "mode": "strict"},
        ])
        stats = st.stats()
    assert [r.flush_rows for r in res] == [2, 2, 1, 1, 1]
    assert stats["coalescing"]["flushes"] == 4


def test_below_threshold_and_strict_take_loop_path():
    with ServerThread(ServeConfig(max_rows=4, flush_ms=10_000.0)) as st:
        small = st.submit_many(
            [{"pipeline": "chain_scan", "data": r} for r in rows(4, 128)])
        strict = st.submit_many(
            [{"pipeline": "chain_scan", "data": r, "mode": "strict"}
             for r in rows(4, 4096)])
        packy = st.submit_many(
            [{"pipeline": "filter", "data": r} for r in rows(4, 4096)])
    assert {r.path for r in small} == {"loop"}    # n below fast threshold
    assert {r.path for r in strict} == {"loop"}   # strict forbids 2D
    assert {r.path for r in packy} == {"ragged"}  # pack: masked 2D + per-row charge


def test_submit_validation_errors():
    with ServerThread(ServeConfig()) as st:
        res = st.submit_many([
            {"pipeline": "nope", "data": [1, 2]},
            {"pipeline": "scan", "data": [1, 2], "dtype": "float32"},
            {"pipeline": "scan", "data": [1, 2], "mode": "turbo"},
            {"pipeline": "scan", "data": []},
            {"pipeline": "scan", "data": [[1], [2]]},
        ])
    assert all(isinstance(r, ServeProtocolError) for r in res)


def test_worker_pool_shares_one_plan_cache():
    data = rows(8, 4096)
    with ServerThread(ServeConfig(workers=3, max_rows=2,
                                  flush_ms=10_000.0)) as st:
        st.submit_many([{"pipeline": "chain_scan", "data": r} for r in data])
        stats = st.stats()
        assert all(svm.engine.cache is st.server.plan_cache
                   for svm in st.server._worker_svms)
    cache = stats["plan_cache"]
    # four flushes of one shape: at most one miss can compile the plan;
    # every later flush must hit the shared warm cache
    assert cache["hits"] >= 3


# ---------------------------------------------------------------------------
# backpressure and shutdown
# ---------------------------------------------------------------------------

def test_backpressure_rejects_past_queue_limit():
    data = rows(6, 1024)
    with ServerThread(ServeConfig(queue_limit=2, max_rows=64,
                                  flush_ms=20.0)) as st:
        res = st.submit_many(
            [{"pipeline": "scan", "data": r} for r in data])
        stats = st.stats()
    rejected = [r for r in res if isinstance(r, ServeOverloadedError)]
    accepted = [r for r in res if not isinstance(r, BaseException)]
    assert len(rejected) == 4 and len(accepted) == 2
    assert "2" in str(rejected[0])
    assert stats["requests"]["rejected"] == 4
    assert stats["requests"]["ok"] == 2


def test_graceful_shutdown_drains_pending_window():
    data = rows(5, 2048)
    st = ServerThread(ServeConfig(max_rows=64, flush_ms=60_000.0)).start()
    results: list = []
    try:
        t = threading.Thread(target=lambda: results.extend(st.submit_many(
            [{"pipeline": "chain_scan", "data": r} for r in data])))
        t.start()
        # wait until all five sit in the (minute-long) window
        for _ in range(2000):
            if st.server._coalescer.pending_rows == 5:
                break
            time.sleep(0.005)
        assert st.server._coalescer.pending_rows == 5
    finally:
        st.stop()                      # drain must execute them, not drop
    t.join(timeout=60)
    assert len(results) == 5
    assert all(not isinstance(r, BaseException) for r in results)
    assert all(r.flush_rows == 5 for r in results)


def test_submit_after_shutdown_raises_closed():
    async def main():
        server = Server(ServeConfig())
        await server.start()
        await server.shutdown()
        with pytest.raises(ServeClosedError):
            await server.submit("scan", [1, 2, 3])

    asyncio.run(main())


def test_shutdown_idempotent():
    async def main():
        server = Server(ServeConfig())
        await server.start()
        await asyncio.gather(server.shutdown(), server.shutdown())
        await server.shutdown()

    asyncio.run(main())


def test_max_requests_triggers_autoshutdown():
    st = ServerThread(ServeConfig(max_requests=2, flush_ms=5.0)).start()
    try:
        res = st.submit_many([
            {"pipeline": "scan", "data": [1, 2, 3]},
            {"pipeline": "scan", "data": [4, 5, 6]},
        ])
        assert all(not isinstance(r, BaseException) for r in res)
        st._thread.join(timeout=60)    # server exits on its own
        assert not st._thread.is_alive()
    finally:
        st.stop()


# ---------------------------------------------------------------------------
# stats document
# ---------------------------------------------------------------------------

def test_stats_document_shape():
    with ServerThread(ServeConfig(max_rows=4, flush_ms=10_000.0)) as st:
        st.submit_many(
            [{"pipeline": "chain_scan", "data": r} for r in rows(4, 4096)])
        stats = st.stats()
    assert stats["config"]["max_rows"] == 4
    assert stats["requests"]["ok"] == 4
    lat = stats["latency_ms"]
    assert lat["count"] == 4
    assert 0 <= lat["p50"] <= lat["p99"] <= lat["max"]
    co = stats["coalescing"]
    assert co["paths"]["2d"] == 1 and co["paths"]["loop"] == 0
    assert co["flush_wait_ms"]["count"] == 1
    assert stats["instructions"] == sum(stats["counters"].values())
    assert stats["instructions"] > 0
    assert stats["plan_cache"]["size"] >= 1


# ---------------------------------------------------------------------------
# the socket layer
# ---------------------------------------------------------------------------

def test_tcp_round_trip_and_introspection():
    with ServerThread(ServeConfig(port=0, max_rows=4,
                                  flush_ms=10.0)) as st:
        host, port = st.address
        with ServeClient(host=host, port=port) as c:
            assert c.ping()
            out = c.execute("scan", [1, 2, 3, 4])
            assert out.tolist() == [1, 3, 6, 10]
            ops = c.ops()
            assert any(o["op"] == "scan" for o in ops)
            assert {"op", "strict", "fast", "codegen", "batch2d"} \
                <= set(ops[0])
            stats = c.stats()
            assert stats["requests"]["ok"] >= 1


def test_tcp_pipelined_execute_many_coalesces():
    data = rows(6, 4096)
    with ServerThread(ServeConfig(port=0, max_rows=6,
                                  flush_ms=10_000.0)) as st:
        host, port = st.address
        with ServeClient(host=host, port=port) as c:
            outs = c.execute_many(
                [{"pipeline": "chain_scan", "data": r.tolist()}
                 for r in data])
            stats = c.stats()
    assert all(isinstance(o, np.ndarray) for o in outs)
    assert stats["coalescing"]["ratio"] == 6.0


def test_tcp_error_frames():
    with ServerThread(ServeConfig(port=0, flush_ms=5.0)) as st:
        host, port = st.address
        with ServeClient(host=host, port=port) as c:
            with pytest.raises(ServeProtocolError, match="unknown pipeline"):
                c.execute("nope", [1])
            with pytest.raises(ServeProtocolError, match="unknown op"):
                c.request({"op": "frobnicate"})
            # raw garbage frame: the server answers instead of dying
            c._file.write(b"this is not json\n")
            c._file.flush()
            resp = c._read()
            assert resp["ok"] is False and resp["code"] == "protocol"
            assert c.ping()            # connection still healthy


def test_tcp_mixed_errors_in_execute_many():
    with ServerThread(ServeConfig(port=0, flush_ms=5.0)) as st:
        host, port = st.address
        with ServeClient(host=host, port=port) as c:
            outs = c.execute_many([
                {"pipeline": "scan", "data": [1, 2, 3]},
                {"pipeline": "nope", "data": [1]},
                {"pipeline": "scan", "data": [4, 5, 6]},
            ])
    assert outs[0].tolist() == [1, 3, 6]
    assert isinstance(outs[1], ServeProtocolError)
    assert outs[2].tolist() == [4, 9, 15]


def test_unix_socket_round_trip(tmp_path):
    path = str(tmp_path / "repro-serve.sock")
    with ServerThread(ServeConfig(unix_path=path, flush_ms=5.0)) as st:
        assert st.server is not None
        with ServeClient(unix_path=path) as c:
            assert c.ping()
            assert c.execute("elementwise", [1, 2]).tolist() == [5, 7]


def test_shutdown_request_drains_and_exits():
    with ServerThread(ServeConfig(port=0, flush_ms=5.0)) as st:
        host, port = st.address
        with ServeClient(host=host, port=port) as c:
            assert c.execute("scan", [1, 1, 1]).tolist() == [1, 2, 3]
            assert c.shutdown() is True
        st._thread.join(timeout=60)
        assert not st._thread.is_alive()


def test_client_requires_exactly_one_endpoint():
    with pytest.raises(ValueError):
        ServeClient()
    with pytest.raises(ValueError):
        ServeClient(port=1, unix_path="/tmp/x")

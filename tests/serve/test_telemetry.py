"""Always-on serve telemetry: end-to-end trace identity, timing
breakdowns, plan-cache outcomes, the flight recorder's bounds and
exemplars, and the Prometheus exposition of a live daemon.

The headline gate: for any served request, the trace ID in the
response matches a flight-recorder event chain spanning
admit → coalesce → flush → complete, and the flush event lists that
request's trace ID.
"""

import numpy as np
import pytest

from repro.obs.exposition import parse_exposition
from repro.serve import ServeConfig, ServerThread


def _events_for(dump: dict, trace_id: str) -> list[dict]:
    """The recorder's events touching one trace, in recorded order."""
    return [e for e in dump["events"]
            if e.get("trace") == trace_id
            or trace_id in (e.get("traces") or ())]


class TestTraceIdentity:
    def test_trace_chain_spans_admit_to_complete(self):
        rows = [list(range(1, 33)) for _ in range(8)]
        with ServerThread(ServeConfig(max_rows=8, flush_ms=10_000)) as st:
            results = st.submit_many(
                [{"pipeline": "chain_scan", "data": r} for r in rows])
            dump = st.flight_dump()

        assert len({res.trace_id for res in results}) == len(results), \
            "trace IDs must be unique per request"
        for res in results:
            chain = _events_for(dump, res.trace_id)
            kinds = [e["kind"] for e in chain]
            assert kinds == ["admit", "coalesce", "flush", "complete"], (
                f"trace {res.trace_id}: bad event chain {kinds}")
            flush_ev = chain[2]
            assert res.trace_id in flush_ev["traces"]
            complete_ev = chain[3]
            assert complete_ev["flush"] == flush_ev["flush"], (
                "complete event must reference the flush that served it")

    def test_one_flush_serves_all_coalesced_traces(self):
        with ServerThread(ServeConfig(max_rows=8, flush_ms=10_000)) as st:
            results = st.submit_many(
                [{"pipeline": "elementwise", "data": list(range(1, 17))}
                 for _ in range(8)])
            dump = st.flight_dump()
        flushes = [e for e in dump["events"] if e["kind"] == "flush"]
        assert len(flushes) == 1
        assert sorted(flushes[0]["traces"]) == sorted(
            res.trace_id for res in results)
        assert flushes[0]["rows"] == 8
        assert flushes[0]["reason"] == "rows"

    def test_timing_breakdown_and_cache_outcome(self):
        cfg = ServeConfig(max_rows=4, flush_ms=10_000)
        with ServerThread(cfg) as st:
            first = st.submit_many(
                [{"pipeline": "scan", "data": list(range(1, 65))}
                 for _ in range(4)])
            second = st.submit_many(
                [{"pipeline": "scan", "data": list(range(2, 66))}
                 for _ in range(4)])
        for res in first + second:
            t = res.timing
            assert set(t) == {"coalesce_ms", "queue_ms", "execute_ms",
                              "total_ms"}
            assert all(v >= 0 for v in t.values())
            assert t["total_ms"] >= t["execute_ms"]
        # first flush of a cold daemon compiles; the same shape again
        # replays from the in-memory cache
        assert all(res.cache == "compile" for res in first)
        assert all(res.cache == "memory" for res in second)

    def test_disk_cache_source_surfaces(self, tmp_path):
        req = {"pipeline": "chain_scan", "data": list(range(1, 65))}
        with ServerThread(ServeConfig(cache_dir=str(tmp_path))) as st:
            assert st.submit(**{k: v for k, v in req.items()
                                if k != "pipeline"},
                             pipeline=req["pipeline"]).cache == "compile"
        # a fresh daemon (cold in-memory cache) over the same store:
        # the persistent entry satisfies the miss
        with ServerThread(ServeConfig(cache_dir=str(tmp_path))) as st:
            res = st.submit(req["pipeline"], req["data"])
            stats = st.stats()
        assert res.cache == "disk"
        sources = stats["plan_cache"]["sources"]
        assert sources["disk"] >= 1
        assert sources["memory"] + sources["disk"] + sources["compile"] \
            == stats["plan_cache"]["hits"] + stats["plan_cache"]["misses"]

    def test_wire_response_carries_trace(self):
        from repro.serve import ServeClient

        with ServerThread(ServeConfig(port=0)) as st:
            host, port = st.address
            with ServeClient(host=host, port=port) as client:
                resp = client.execute_traced("reverse", [1, 2, 3, 4])
        assert resp["trace"].startswith("t")
        assert resp["cache"] in ("memory", "disk", "compile", "none")
        assert resp["timing"]["total_ms"] >= resp["timing"]["execute_ms"]
        assert np.array_equal(resp["result"], [4, 3, 2, 1])


class TestTelemetryOff:
    def test_disabled_daemon_serves_identically_with_no_events(self):
        cfg = ServeConfig(telemetry=False, max_rows=4, flush_ms=10_000)
        with ServerThread(cfg) as st:
            results = st.submit_many(
                [{"pipeline": "chain_scan", "data": list(range(1, 33))}
                 for _ in range(4)])
            dump = st.flight_dump()
            stats = st.stats()
        for res in results:
            assert res.trace_id == ""
            assert res.timing == {}
        assert dump["events"] == []
        assert dump["recorded"] == 0
        assert stats["telemetry"]["enabled"] is False
        assert stats["requests"]["ok"] == 4


class TestFlightRecorder:
    def test_ring_buffer_bounds_and_drop_accounting(self):
        cfg = ServeConfig(max_rows=2, flush_ms=10_000, flight_capacity=8)
        with ServerThread(cfg) as st:
            for _ in range(6):
                st.submit_many(
                    [{"pipeline": "elementwise", "data": [1, 2, 3, 4]}
                     for _ in range(2)])
            dump = st.flight_dump()
        assert len(dump["events"]) == 8
        assert dump["recorded"] > 8
        assert dump["dropped"] == dump["recorded"] - len(dump["events"])
        # the ring retains the *newest* events
        seqs = [e["seq"] for e in dump["events"]]
        assert seqs == sorted(seqs)

    def test_slowest_exemplars_retained_in_order(self):
        cfg = ServeConfig(max_rows=1, flush_ms=10_000, flight_exemplars=3)
        with ServerThread(cfg) as st:
            for i in range(7):
                st.submit("scan", list(range(1, 40 + i)))
            dump = st.flight_dump()
        exemplars = dump["exemplars"]
        assert len(exemplars) == 3
        totals = [x["total_ms"] for x in exemplars]
        assert totals == sorted(totals, reverse=True)
        for x in exemplars:
            assert set(x["spans"]) == {"coalesce_ms", "queue_ms",
                                       "execute_ms", "total_ms"}
            assert x["trace"].startswith("t") and x["flush"].startswith("f")

    def test_backpressure_rejections_recorded(self):
        cfg = ServeConfig(max_rows=64, flush_ms=5, queue_limit=1)
        with ServerThread(cfg) as st:
            results = st.submit_many(
                [{"pipeline": "chain_scan", "data": [1, 2, 3, 4]}
                 for _ in range(6)])
            dump = st.flight_dump()
        rejected = [r for r in results if isinstance(r, Exception)]
        rejects = [e for e in dump["events"] if e["kind"] == "reject"]
        assert len(rejects) == len(rejected)
        assert all(e["reason"] == "overloaded" for e in rejects)


class TestExposition:
    def test_live_daemon_scrape_is_strictly_valid(self):
        with ServerThread(ServeConfig(max_rows=4, flush_ms=10_000,
                                      workers=2)) as st:
            st.submit_many(
                [{"pipeline": "chain_scan", "data": list(range(1, 33))}
                 for _ in range(4)])
            st.submit("filter", list(range(1, 17)))
            text = st.metrics_exposition()
        doc = parse_exposition(text)  # raises on any format violation
        assert "repro_serve_requests_total" in doc
        total = next(v for name, labels, v
                     in doc["repro_serve_requests_total"]["samples"]
                     if not labels)
        assert total == 5
        labeled = doc["repro_serve_pipeline_requests_total"]["samples"]
        by_pipeline = {labels["pipeline"]: v for _, labels, v in labeled}
        assert by_pipeline == {"chain_scan": 4, "filter": 1}
        assert "repro_serve_instructions" in doc
        assert "repro_serve_plan_cache_lookups" in doc

    def test_counters_unperturbed_by_telemetry(self):
        reqs = [{"pipeline": "scan", "data": list(range(1, 65))}
                for _ in range(4)]
        stats = {}
        for enabled in (True, False):
            with ServerThread(ServeConfig(max_rows=4, flush_ms=10_000,
                                          telemetry=enabled)) as st:
                st.submit_many(reqs)
                stats[enabled] = st.stats()
        assert stats[True]["counters"] == stats[False]["counters"], (
            "telemetry must never perturb the machine's instruction "
            "counters")


@pytest.mark.parametrize("pipeline", ["chain_scan", "filter"])
def test_stats_document_gains_telemetry_sections(pipeline):
    with ServerThread(ServeConfig(max_rows=2, flush_ms=10_000)) as st:
        st.submit_many([{"pipeline": pipeline, "data": [3, 1, 4, 1]}
                        for _ in range(2)])
        stats = st.stats()
    assert stats["telemetry"]["enabled"] is True
    assert stats["telemetry"]["flight"]["recorded"] > 0
    assert stats["uptime_s"] >= 0
    assert stats["pipelines"][pipeline]["requests"] == 2
    assert "latency_ms" in stats["pipelines"][pipeline]

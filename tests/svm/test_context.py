"""Tests for the SVM context: array management, dispatch, counters."""

import numpy as np
import pytest

from repro import SVM
from repro.errors import ConfigurationError, VectorLengthError
from repro.rvv import RVVMachine
from repro.rvv.types import LMUL


class TestConstruction:
    def test_default_machine(self):
        svm = SVM(vlen=256, codegen="paper")
        assert svm.machine.vlen == 256
        assert svm.machine.codegen.name == "paper"

    def test_wraps_existing_machine(self):
        m = RVVMachine(vlen=512)
        svm = SVM(m)
        assert svm.machine is m

    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            SVM(mode="turbo")


class TestArrays:
    def test_array_roundtrip(self):
        svm = SVM(vlen=128)
        a = svm.array([1, 2, 3])
        assert a.to_numpy().tolist() == [1, 2, 3]
        assert len(a) == 3

    def test_view_is_live(self):
        svm = SVM(vlen=128)
        a = svm.array([1, 2, 3])
        a.view()[1] = 42
        assert a.to_numpy().tolist() == [1, 42, 3]

    def test_zeros_and_empty(self):
        svm = SVM(vlen=128)
        assert not svm.zeros(5).to_numpy().any()
        assert len(svm.empty(7)) == 7

    def test_rejects_2d(self):
        svm = SVM(vlen=128)
        with pytest.raises(VectorLengthError):
            svm.array(np.zeros((2, 2)))

    def test_setup_is_uncharged(self):
        svm = SVM(vlen=128)
        svm.array([1, 2, 3])
        svm.zeros(10)
        assert svm.instructions == 0

    def test_free_releases_heap(self):
        svm = SVM(vlen=128)
        a = svm.array([1, 2, 3])
        before = svm.machine.heap.live_bytes
        svm.free(a)
        assert svm.machine.heap.live_bytes < before

    def test_copy(self, svm_mode):
        svm = SVM(vlen=128, mode=svm_mode)
        a = svm.array([1, 2, 3, 4, 5])
        b = svm.copy(a)
        assert b.to_numpy().tolist() == [1, 2, 3, 4, 5]
        a.view()[0] = 99
        assert b.to_numpy()[0] == 1  # deep copy


class TestDispatch:
    def test_strict_mode_never_fast(self):
        svm = SVM(vlen=128, mode="strict")
        assert not svm._fast(10**6)

    def test_fast_mode_always_fast(self):
        svm = SVM(vlen=128, mode="fast")
        assert svm._fast(1)

    def test_auto_threshold(self):
        svm = SVM(vlen=128, mode="auto", fast_threshold=100)
        assert not svm._fast(99)
        assert svm._fast(100)

    def test_auto_modes_agree_on_counts(self):
        """A call routed strictly and one routed fast must charge the
        same instructions (the parity contract)."""
        results = []
        for threshold in (10**9, 0):  # force strict / force fast
            svm = SVM(vlen=128, mode="auto", fast_threshold=threshold,
                      codegen="paper")
            a = svm.array(np.arange(333, dtype=np.uint32))
            svm.reset()
            svm.plus_scan(a)
            results.append((svm.instructions, a.to_numpy().tolist()))
        assert results[0] == results[1]

    def test_default_lmul_applied(self):
        svm1 = SVM(vlen=1024, codegen="paper", lmul=LMUL.M4, mode="fast")
        svm2 = SVM(vlen=1024, codegen="paper", mode="fast")
        a1 = svm1.array(np.zeros(1000, dtype=np.uint32))
        a2 = svm2.array(np.zeros(1000, dtype=np.uint32))
        svm1.reset(); svm2.reset()
        svm1.p_add(a1, 1)
        svm2.p_add(a2, 1, lmul=LMUL.M4)
        assert svm1.instructions == svm2.instructions


class TestCounters:
    def test_instructions_property(self):
        svm = SVM(vlen=128)
        a = svm.array([1, 2])
        svm.p_add(a, 1)
        assert svm.instructions == svm.machine.counters.total > 0

    def test_reset(self):
        svm = SVM(vlen=128)
        a = svm.array([1, 2])
        svm.p_add(a, 1)
        svm.reset()
        assert svm.instructions == 0

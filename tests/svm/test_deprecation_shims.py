"""The legacy ``*_ext`` kernel modules must warn once on import and
re-export the exact objects now living in the merged modules."""

from __future__ import annotations

import importlib
import sys

import pytest

SHIMS = {
    "repro.svm.elementwise_ext": "repro.svm.elementwise",
    "repro.svm.fastpath_ext": "repro.svm.fastpath",
}


def _fresh_import(name: str):
    """Import ``name`` as if for the first time (module-level warnings
    fire on first import only)."""
    sys.modules.pop(name, None)
    try:
        return importlib.import_module(name)
    finally:
        sys.modules.pop(name, None)


@pytest.mark.parametrize("shim,target", sorted(SHIMS.items()))
def test_shim_import_emits_deprecation_warning(shim, target):
    with pytest.warns(DeprecationWarning, match=f"{shim} is deprecated"):
        _fresh_import(shim)


@pytest.mark.parametrize("shim,target", sorted(SHIMS.items()))
def test_shim_reexports_are_identical_objects(shim, target):
    with pytest.warns(DeprecationWarning):
        mod = _fresh_import(shim)
    real = importlib.import_module(target)
    assert mod.__all__, shim
    for name in mod.__all__:
        assert getattr(mod, name) is getattr(real, name), name


def test_library_itself_never_imports_the_shims():
    """Importing the package (and the serve daemon on top of it) must
    not trigger the deprecation warnings — only legacy callers do."""
    import subprocess

    code = (
        "import warnings, sys\n"
        "warnings.simplefilter('error', DeprecationWarning)\n"
        "import repro, repro.batch, repro.serve, repro.bench\n"
        + "".join(f"assert {name!r} not in sys.modules\n" for name in SHIMS)
    )
    subprocess.run([sys.executable, "-c", code], check=True)

"""Tests for the derived scan operations (copy-scan, reduce-distribute,
backward scans)."""

import numpy as np
import pytest

from repro.svm.derived import (
    scan_backward,
    seg_copy,
    seg_scan_backward,
    seg_total,
    tail_to_head_flags,
)
from tests.oracles import OPS


class TestSegCopy:
    def test_distributes_head_values(self, svm):
        vals = svm.array([5, 1, 2, 9, 3, 7])
        heads = svm.array([1, 0, 0, 1, 0, 1])
        out = seg_copy(svm, vals, heads)
        assert out.to_numpy().tolist() == [5, 5, 5, 9, 9, 7]

    def test_single_segment(self, svm):
        vals = svm.array([4, 8, 2])
        out = seg_copy(svm, vals, svm.zeros(3))
        assert out.to_numpy().tolist() == [4, 4, 4]


class TestTailToHead:
    def test_basic(self, svm):
        heads = svm.array([1, 0, 1, 0, 0])
        out = tail_to_head_flags(svm, heads)
        # reversed segmentation's heads: original tails (idx 1 and 4)
        # reversed -> positions 0 and 3
        assert out.to_numpy().tolist() == [1, 0, 0, 1, 0]


class TestSegTotal:
    @pytest.mark.parametrize("op", ["plus", "max", "min"])
    def test_operators(self, svm, rng, op):
        fn, ident = OPS[op]
        vals_np = rng.integers(0, 100, 23, dtype=np.uint32)
        heads_np = (rng.random(23) < 0.3).astype(np.uint32)
        out = seg_total(svm, svm.array(vals_np), svm.array(heads_np), op)
        # oracle: per-segment reduce broadcast
        heads_np = heads_np.copy()
        heads_np[0] = 1
        bounds = np.flatnonzero(heads_np).tolist() + [23]
        expect = np.empty(23, dtype=np.uint32)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            acc = ident
            for v in vals_np[lo:hi]:
                acc = fn(acc, int(v)) & 0xFFFFFFFF
            expect[lo:hi] = acc
        assert np.array_equal(out.to_numpy(), expect)


class TestBackwardScans:
    def test_suffix_sum(self, svm):
        a = svm.array([1, 2, 3, 4])
        scan_backward(svm, a)
        assert a.to_numpy().tolist() == [10, 9, 7, 4]

    def test_exclusive_suffix(self, svm):
        a = svm.array([1, 2, 3, 4])
        scan_backward(svm, a, inclusive=False)
        assert a.to_numpy().tolist() == [9, 7, 4, 0]

    def test_suffix_max(self, svm):
        a = svm.array([3, 9, 1, 5])
        scan_backward(svm, a, "max")
        assert a.to_numpy().tolist() == [9, 9, 5, 5]

    def test_segmented_suffix(self, svm):
        a = svm.array([1, 2, 3, 4, 5])
        heads = svm.array([1, 0, 0, 1, 0])
        seg_scan_backward(svm, a, heads)
        assert a.to_numpy().tolist() == [6, 5, 3, 9, 5]

    def test_segmented_suffix_exclusive(self, svm):
        a = svm.array([1, 2, 3, 4, 5])
        heads = svm.array([1, 0, 0, 1, 0])
        seg_scan_backward(svm, a, heads, inclusive=False)
        assert a.to_numpy().tolist() == [5, 3, 0, 5, 0]

    def test_mode_parity(self, rng):
        from repro import SVM
        vals = rng.integers(0, 1000, 61, dtype=np.uint32)
        results = []
        for mode in ("strict", "fast"):
            svm = SVM(vlen=128, mode=mode, codegen="paper")
            a = svm.array(vals)
            svm.reset()
            scan_backward(svm, a)
            results.append((a.to_numpy().tolist(), svm.instructions))
        assert results[0] == results[1]

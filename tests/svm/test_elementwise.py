"""Tests for the elementwise primitive class (§4.1), in both execution
modes via the parametrized ``svm`` fixture."""

import numpy as np
import pytest

from repro.errors import VectorLengthError
from repro.rvv.counters import Cat

OPS_VX = {
    "p_add": lambda a, x: a + x,
    "p_sub": lambda a, x: a - x,
    "p_mul": lambda a, x: a * x,
    "p_and": lambda a, x: a & x,
    "p_or": lambda a, x: a | x,
    "p_xor": lambda a, x: a ^ x,
    "p_max": np.maximum,
    "p_min": np.minimum,
}


class TestVectorScalarForms:
    @pytest.mark.parametrize("name", sorted(OPS_VX))
    def test_semantics(self, svm, rng, name):
        data = rng.integers(0, 2**32, 37, dtype=np.uint32)
        a = svm.array(data)
        getattr(svm, name)(a, 12345)
        expect = OPS_VX[name](data, np.uint32(12345))
        assert np.array_equal(a.to_numpy(), expect)

    def test_wraparound(self, svm):
        a = svm.array([2**32 - 1])
        svm.p_add(a, 3)
        assert a.to_numpy().tolist() == [2]

    def test_multi_strip(self, svm, rng):
        """37 elements at VLEN=128 = 10 strips; the count must reflect
        the strip-mining structure (Listing 4)."""
        data = rng.integers(0, 100, 37, dtype=np.uint32)
        a = svm.array(data)
        svm.reset()
        svm.p_add(a, 1)
        # 10 strips: 1 vsetvl + 2 vmem + 1 varith each
        assert svm.counters[Cat.VCONFIG] == 10
        assert svm.counters[Cat.VMEM] == 20
        assert svm.counters[Cat.VARITH] == 10


class TestVectorVectorForms:
    @pytest.mark.parametrize("name", sorted(OPS_VX))
    def test_semantics(self, svm, rng, name):
        da = rng.integers(0, 2**32, 23, dtype=np.uint32)
        db = rng.integers(0, 2**32, 23, dtype=np.uint32)
        a, b = svm.array(da), svm.array(db)
        getattr(svm, name)(a, b)
        assert np.array_equal(a.to_numpy(), OPS_VX[name](da, db))
        assert np.array_equal(b.to_numpy(), db)  # b untouched

    def test_length_mismatch(self, svm):
        with pytest.raises(VectorLengthError):
            svm.p_add(svm.array([1, 2]), svm.array([1, 2, 3]))


class TestPSelect:
    def test_semantics(self, svm):
        flags = svm.array([1, 0, 0, 1, 1])
        a = svm.array([10, 20, 30, 40, 50])
        b = svm.array([1, 2, 3, 4, 5])
        svm.p_select(flags, a, b)
        assert b.to_numpy().tolist() == [10, 2, 3, 40, 50]

    def test_split_usage_pattern(self, svm):
        """Listing 7's call: merge i_down into i_up where flag set."""
        flags = svm.array([0, 1, 0, 1])
        i_down = svm.array([9, 2, 9, 3])
        i_up = svm.array([0, 9, 1, 9])
        svm.p_select(flags, i_down, i_up)
        assert i_up.to_numpy().tolist() == [0, 2, 1, 3]


class TestGetFlags:
    def test_extracts_bit(self, svm):
        src = svm.array([0b000, 0b010, 0b110, 0b101])
        flags = svm.get_flags(src, 1)
        assert flags.to_numpy().tolist() == [0, 1, 1, 0]

    def test_high_bit(self, svm):
        src = svm.array([2**31, 2**31 - 1])
        flags = svm.get_flags(src, 31)
        assert flags.to_numpy().tolist() == [1, 0]

    def test_out_reuse(self, svm):
        src = svm.array([1, 2, 3])
        out = svm.zeros(3)
        got = svm.get_flags(src, 0, out=out)
        assert got is out
        assert out.to_numpy().tolist() == [1, 0, 1]


class TestCountsMatchPaperShape:
    def test_p_add_9_per_strip_paper_preset(self):
        """Table 2's signature: 9 dynamic instructions per strip plus a
        9-instruction prologue, at any VLEN (Table 7)."""
        from repro import SVM
        for vlen, n in ((128, 40), (1024, 320)):
            svm = SVM(vlen=vlen, codegen="paper", mode="strict")
            a = svm.array(np.zeros(n, dtype=np.uint32))
            svm.reset()
            svm.p_add(a, 1)
            strips = n // (vlen // 32)
            assert svm.instructions == 9 * strips + 9

"""Tests for the extended primitive set (flag compares, index, rsub,
reduce, shift1up)."""

import numpy as np
import pytest

CMP = {
    "p_lt": np.less, "p_le": np.less_equal, "p_gt": np.greater,
    "p_ge": np.greater_equal, "p_eq": np.equal, "p_ne": np.not_equal,
}


class TestFlagCompares:
    @pytest.mark.parametrize("name", sorted(CMP))
    def test_vv_semantics(self, svm, rng, name):
        da = rng.integers(0, 50, 37, dtype=np.uint32)
        db = rng.integers(0, 50, 37, dtype=np.uint32)
        out = getattr(svm, name)(svm.array(da), svm.array(db))
        assert np.array_equal(out.to_numpy(), CMP[name](da, db).astype(np.uint32))

    @pytest.mark.parametrize("name", sorted(CMP))
    def test_vx_semantics(self, svm, rng, name):
        da = rng.integers(0, 50, 23, dtype=np.uint32)
        out = getattr(svm, name)(svm.array(da), 25)
        assert np.array_equal(out.to_numpy(), CMP[name](da, np.uint32(25)).astype(np.uint32))

    def test_unsigned_comparison(self, svm):
        big = 2**31 + 7
        out = svm.p_gt(svm.array([big, 3]), 10)
        assert out.to_numpy().tolist() == [1, 0]

    def test_output_is_binary_flags(self, svm, rng):
        da = rng.integers(0, 10, 40, dtype=np.uint32)
        out = svm.p_le(svm.array(da), 5)
        assert set(np.unique(out.to_numpy())) <= {0, 1}


class TestIndexAndRsub:
    def test_index_array(self, svm):
        out = svm.index_array(13)
        assert out.to_numpy().tolist() == list(range(13))

    def test_index_multi_strip_offsets(self, svm):
        """VLEN=128 -> vl=4; vid must be rebased every strip."""
        out = svm.index_array(10)
        assert out.to_numpy().tolist() == list(range(10))

    def test_p_rsub(self, svm):
        a = svm.array([0, 3, 10])
        svm.p_rsub(a, 10)
        assert a.to_numpy().tolist() == [10, 7, 0]

    def test_rsub_wraps(self, svm):
        a = svm.array([5])
        svm.p_rsub(a, 2)
        assert a.to_numpy().tolist() == [2**32 - 3]

    def test_reversal_index_idiom(self, svm):
        idx = svm.index_array(5)
        svm.p_rsub(idx, 4)
        assert idx.to_numpy().tolist() == [4, 3, 2, 1, 0]


class TestReduce:
    @pytest.mark.parametrize("op,fn,ident", [
        ("plus", lambda a: int(a.sum(dtype=np.uint64)) % 2**32, 0),
        ("max", lambda a: int(a.max()), 0),
        ("min", lambda a: int(a.min()), 2**32 - 1),
        ("or", lambda a: int(np.bitwise_or.reduce(a)), 0),
        ("and", lambda a: int(np.bitwise_and.reduce(a)), 2**32 - 1),
        ("xor", lambda a: int(np.bitwise_xor.reduce(a)), 0),
    ])
    def test_operators(self, svm, rng, op, fn, ident):
        data = rng.integers(0, 2**32, 37, dtype=np.uint32)
        assert svm.reduce(svm.array(data), op) == fn(data)

    def test_empty_returns_identity(self, svm):
        assert svm.reduce(svm.array([]), "plus") == 0
        assert svm.reduce(svm.array([]), "min") == 2**32 - 1

    def test_matches_scan_last(self, svm, rng):
        data = rng.integers(0, 1000, 21, dtype=np.uint32)
        total = svm.reduce(svm.array(data), "plus")
        a = svm.array(data)
        svm.plus_scan(a)
        assert total == int(a.to_numpy()[-1])


class TestShift1Up:
    def test_semantics(self, svm):
        out = svm.shift1up(svm.array([1, 2, 3]), 9)
        assert out.to_numpy().tolist() == [9, 1, 2]

    def test_cross_strip_boundary_carry(self, svm):
        """The boundary element must ride across strips (vl=4)."""
        out = svm.shift1up(svm.array(list(range(10))), 99)
        assert out.to_numpy().tolist() == [99] + list(range(9))

    def test_in_place_aliasing(self, svm):
        a = svm.array([1, 2, 3, 4, 5, 6])
        got = svm.shift1up(a, 0, out=a)
        assert got is a
        assert a.to_numpy().tolist() == [0, 1, 2, 3, 4, 5]

    def test_fill_wraps(self, svm):
        out = svm.shift1up(svm.array([1]), 2**32 + 5)
        assert out.to_numpy().tolist() == [5]


class TestShifts:
    def test_p_srl(self, svm):
        a = svm.array([8, 9, 2**31])
        svm.p_srl(a, 3)
        assert a.to_numpy().tolist() == [1, 1, 2**28]

    def test_p_sll(self, svm):
        a = svm.array([1, 3])
        svm.p_sll(a, 4)
        assert a.to_numpy().tolist() == [16, 48]

    def test_shift_amount_masked(self, svm):
        """Hardware uses the low lg2(SEW) shift bits: 33 acts as 1."""
        a = svm.array([4])
        svm.p_srl(a, 33)
        assert a.to_numpy().tolist() == [2]

    def test_parity(self, rng):
        from repro import SVM
        data = rng.integers(0, 2**32, 77, dtype=np.uint32)
        results = []
        for mode in ("strict", "fast"):
            svm = SVM(vlen=128, mode=mode, codegen="paper")
            a = svm.array(data)
            svm.reset()
            svm.p_srl(a, 5)
            svm.p_sll(a, 2)
            results.append((a.to_numpy().tolist(), svm.counters.as_dict()))
        assert results[0] == results[1]

"""Tests for enumerate (Listing 8) and split (Listing 7)."""

import numpy as np
import pytest

from repro.rvv.counters import Cat


class TestEnumerate:
    def test_enumerate_ones(self, svm):
        flags = svm.array([1, 0, 1, 1, 0, 1])
        ranks, count = svm.enumerate(flags, set_bit=True)
        assert ranks.to_numpy().tolist() == [0, 1, 1, 2, 3, 3]
        assert count == 4

    def test_enumerate_zeros(self, svm):
        flags = svm.array([1, 0, 1, 1, 0, 1])
        ranks, count = svm.enumerate(flags, set_bit=False)
        assert ranks.to_numpy().tolist() == [0, 0, 1, 1, 1, 2]
        assert count == 2

    def test_cross_strip_count_propagation(self, svm):
        """Listing 8's vcpop accumulation: ranks keep counting across
        strips (VLEN=128 -> vl=4)."""
        flags = svm.array([1] * 12)
        ranks, count = svm.enumerate(flags, set_bit=True)
        assert ranks.to_numpy().tolist() == list(range(12))
        assert count == 12

    def test_is_exclusive_scan_of_matches(self, svm, rng):
        raw = (rng.random(50) < 0.4).astype(np.uint32)
        flags = svm.array(raw)
        ranks, count = svm.enumerate(flags, set_bit=True)
        expect = np.concatenate(([0], np.cumsum(raw)[:-1]))
        assert np.array_equal(ranks.to_numpy(), expect.astype(np.uint32))
        assert count == int(raw.sum())

    def test_uses_viota_not_slideups(self, svm):
        """The §4.4 optimization: enumerate's in-register phase is
        viota (mask category), not the scan's slideup chain."""
        flags = svm.array([1, 0, 1, 0])
        svm.reset()
        svm.enumerate(flags, set_bit=True)
        assert svm.counters[Cat.VPERM] == 0
        assert svm.counters[Cat.VMASK] >= 3  # vmseq + viota + vcpop


class TestSplit:
    def test_figure3_example(self, svm):
        """Figure 3: flag-0 elements to the bottom, order preserved."""
        src = svm.array([1, 2, 3, 4, 5, 6])
        flags = svm.array([0, 1, 0, 1, 0, 1])
        dst, zeros = svm.split(src, flags)
        assert dst.to_numpy().tolist() == [1, 3, 5, 2, 4, 6]
        assert zeros == 3

    def test_stability(self, svm, rng):
        data = rng.integers(0, 100, 40, dtype=np.uint32)
        raw_flags = (rng.random(40) < 0.5).astype(np.uint32)
        src, flags = svm.array(data), svm.array(raw_flags)
        dst, zeros = svm.split(src, flags)
        expect = np.concatenate((data[raw_flags == 0], data[raw_flags == 1]))
        assert np.array_equal(dst.to_numpy(), expect)
        assert zeros == int((raw_flags == 0).sum())

    def test_all_zero_flags(self, svm):
        src = svm.array([4, 5, 6])
        dst, zeros = svm.split(src, svm.zeros(3))
        assert dst.to_numpy().tolist() == [4, 5, 6]
        assert zeros == 3

    def test_all_one_flags(self, svm):
        src = svm.array([4, 5, 6])
        dst, zeros = svm.split(src, svm.array([1, 1, 1]))
        assert dst.to_numpy().tolist() == [4, 5, 6]
        assert zeros == 0

    def test_scratch_freed(self, svm):
        """Listing 7 frees i_up/i_down; the heap must not leak."""
        src = svm.array([1, 2, 3, 4])
        flags = svm.array([0, 1, 0, 1])
        before = svm.machine.heap.live_bytes
        dst, _ = svm.split(src, flags)
        after = svm.machine.heap.live_bytes
        # only the returned destination array remains allocated
        assert after - before == dst.ptr.view(4).nbytes

    def test_source_untouched(self, svm):
        src = svm.array([9, 1, 8, 2])
        flags = svm.array([1, 0, 1, 0])
        svm.split(src, flags)
        assert src.to_numpy().tolist() == [9, 1, 8, 2]

"""The verbatim listing ports must compute exactly what the production
kernels compute — the paper's code and our generalized kernels are the
same algorithms."""

import numpy as np
import pytest

from repro import SVM, RVVMachine
from repro.svm import listings


@pytest.fixture(params=[128, 256, 1024])
def machine(request):
    return RVVMachine(vlen=request.param)


def _arr(m, values):
    return m.array(np.asarray(values, dtype=np.uint32))


class TestListing1And4:
    def test_vector_add(self, machine, rng):
        da = rng.integers(0, 2**32, 37, dtype=np.uint32)
        db = rng.integers(0, 2**32, 37, dtype=np.uint32)
        a, b = machine.array(da), machine.array(db)
        listings.listing1_vector_add(machine, 37, a, b)
        assert np.array_equal(a.read(37), da + db)

    def test_p_add_matches_production(self, machine, rng):
        data = rng.integers(0, 2**32, 41, dtype=np.uint32)
        a = machine.array(data)
        listings.listing4_p_add(machine, 41, a, 999)

        svm = SVM(vlen=machine.vlen, mode="strict")
        prod = svm.array(data)
        svm.p_add(prod, 999)
        assert np.array_equal(a.read(41), prod.to_numpy())


class TestListing5:
    def test_permute_matches_production(self, machine, rng):
        data = rng.integers(0, 2**32, 23, dtype=np.uint32)
        perm = rng.permutation(23).astype(np.uint32)
        src = machine.array(data)
        dst = machine.array(np.zeros(23, dtype=np.uint32))
        idx = machine.array(perm)
        listings.listing5_permute(machine, 23, src, dst, idx)

        svm = SVM(vlen=machine.vlen, mode="strict")
        prod = svm.permute(svm.array(data), svm.array(perm))
        assert np.array_equal(dst.read(23), prod.to_numpy())


class TestListing6:
    @pytest.mark.parametrize("n", [1, 4, 5, 37, 100])
    def test_plus_scan_matches_production(self, machine, rng, n):
        data = rng.integers(0, 2**32, n, dtype=np.uint32)
        a = machine.array(data)
        listings.listing6_plus_scan(machine, n, a)

        svm = SVM(vlen=machine.vlen, mode="strict")
        prod = svm.array(data)
        svm.plus_scan(prod)
        assert np.array_equal(a.read(n), prod.to_numpy())


class TestListing8:
    def test_enumerate_matches_production(self, machine, rng):
        raw = (rng.random(50) < 0.4).astype(np.uint32)
        flags = machine.array(raw)
        dst = machine.array(np.zeros(50, dtype=np.uint32))
        count = listings.listing8_enumerate(machine, 50, flags, dst, True)

        svm = SVM(vlen=machine.vlen, mode="strict")
        prod, prod_count = svm.enumerate(svm.array(raw), set_bit=True)
        assert count == prod_count
        assert np.array_equal(dst.read(50), prod.to_numpy())


class TestListing10:
    @pytest.mark.parametrize("n", [1, 4, 37, 100])
    def test_seg_scan_matches_production(self, machine, rng, n):
        data = rng.integers(0, 2**32, n, dtype=np.uint32)
        raw_flags = (rng.random(n) < 0.25).astype(np.uint32)
        src = machine.array(data)
        flags = machine.array(raw_flags)
        listings.listing10_seg_plus_scan(machine, n, src, flags)

        svm = SVM(vlen=machine.vlen, mode="strict")
        prod = svm.array(data)
        svm.seg_plus_scan(prod, svm.array(raw_flags))
        assert np.array_equal(src.read(n), prod.to_numpy())

    def test_segment_spanning_strip(self, machine):
        lanes = machine.vlmax()
        n = lanes * 3
        src = machine.array(np.ones(n, dtype=np.uint32))
        flags = machine.array(np.zeros(n, dtype=np.uint32))
        listings.listing10_seg_plus_scan(machine, n, src, flags)
        assert src.read(n).tolist() == list(range(1, n + 1))

"""Unit tests for the scan operator abstraction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.svm.operators import AND, MAX, MIN, OPERATORS, OR, PLUS, XOR, get_operator


class TestIdentities:
    def test_plus_identity(self):
        assert PLUS.identity(np.uint32) == 0

    def test_min_identity_is_all_ones(self):
        assert MIN.identity(np.uint32) == 2**32 - 1
        assert MIN.identity(np.uint16) == 2**16 - 1

    def test_and_identity(self):
        assert AND.identity(np.uint8) == 0xFF

    def test_max_or_xor_identity(self):
        for op in (MAX, OR, XOR):
            assert op.identity(np.uint32) == 0

    def test_identity_is_left_identity(self):
        """I⊕ ⊕ a == a for every operator — the property exclusive
        scans rely on."""
        rng = np.random.default_rng(1)
        for op in OPERATORS.values():
            ident = np.uint32(op.identity(np.uint32))
            a = rng.integers(0, 2**32, 10, dtype=np.uint32)
            assert np.array_equal(op.ufunc(ident, a), a), op.name


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_operator("plus") is PLUS
        assert get_operator("max") is MAX

    def test_passthrough(self):
        assert get_operator(OR) is OR

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_operator("mul")

    def test_intrinsic_names_resolve(self):
        """Every operator's declared intrinsics must exist."""
        from repro.rvv.intrinsics import arith
        for op in OPERATORS.values():
            assert hasattr(arith, op.vv_intrinsic), op.vv_intrinsic
            assert hasattr(arith, op.vx_intrinsic), op.vx_intrinsic

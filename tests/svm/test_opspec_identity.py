"""Registry-parametrized identity suite.

Every primitive registered in :mod:`repro.svm.opspec` must produce
bit-identical results *and* per-category counters across all five
execution tiers — eager strict, eager fast, lazy interp, lazy codegen,
lazy native (compiled whole-plan C kernels) — over a VLEN × LMUL grid.
The op list is derived from the registry itself, and a completeness
assertion keeps the two in lockstep: registering a new primitive
without adding an invocation here fails the suite.

The native tier runs each plan twice in one context so the second
execution replays the compiled kernel (the first is the codegen
warm-up that records the counter-charge profile); when no C toolchain
is present the tier degrades to codegen and the identity contract
still holds — a dedicated fallback test forces that path.

Composites (reverse, split) are checked for bit-identical results
across all tiers; their lazy counter profile legitimately differs from
eager (the captured lowering allocates uncharged plan temporaries
where the eager body may charge machine mallocs), so only the
strict/fast counter contract is asserted for them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.rvv.types import LMUL
from repro.svm import opspec
from repro.svm.context import SVMArray

#: Prime length: remainder strips on every (VLEN, LMUL) cell.
N = 97

#: (vlen, lmul) cells — small/large VLEN crossed with no-spill and
#: spill-heavy register pressure.
GRID = [(128, 1), (128, 8), (1024, 1), (1024, 4)]

# ---------------------------------------------------------------------------
# one invocation per registered op
# ---------------------------------------------------------------------------
# Each entry makes exactly ONE primitive call: single calls are where
# the four tiers are contractually counter-identical (multi-op plans
# may legitimately *save* counts through fusion).

_INVOKE = {
    "p_add": lambda api, r: api.p_add(r["a"], 7),
    "p_sub": lambda api, r: api.p_sub(r["a"], r["b"]),
    "p_mul": lambda api, r: api.p_mul(r["a"], 3),
    "p_and": lambda api, r: api.p_and(r["a"], 0xFF00FF),
    "p_or": lambda api, r: api.p_or(r["a"], r["b"]),
    "p_xor": lambda api, r: api.p_xor(r["a"], 0x5A5A5A5A),
    "p_max": lambda api, r: api.p_max(r["a"], r["b"]),
    "p_min": lambda api, r: api.p_min(r["a"], 2**20),
    "p_srl": lambda api, r: api.p_srl(r["a"], 3),
    "p_sll": lambda api, r: api.p_sll(r["a"], 2),
    "p_rsub": lambda api, r: api.p_rsub(r["a"], N - 1),
    "p_select": lambda api, r: api.p_select(r["flags"], r["a"], r["b"]),
    "get_flags": lambda api, r: api.get_flags(r["a"], 3, out=r["out"]),
    "p_lt": lambda api, r: api.p_lt(r["a"], 2**20),
    "p_le": lambda api, r: api.p_le(r["a"], r["b"]),
    "p_gt": lambda api, r: api.p_gt(r["a"], 2**20),
    "p_ge": lambda api, r: api.p_ge(r["a"], 2**20),
    "p_eq": lambda api, r: api.p_eq(r["a"], r["b"]),
    "p_ne": lambda api, r: api.p_ne(r["a"], 0),
    "scan": lambda api, r: api.scan(r["a"]),
    "seg_scan": lambda api, r: api.seg_scan(r["a"], r["heads"]),
    "permute": lambda api, r: api.permute(r["a"], r["idx"], out=r["out"]),
    "back_permute": lambda api, r: api.back_permute(r["a"], r["idx"],
                                                    out=r["out"]),
    "pack": lambda api, r: api.pack(r["a"], r["flags"], out=r["out"]),
    "enumerate": lambda api, r: api.enumerate(r["flags"], out=r["out"]),
    "index_array": lambda api, r: api.index_array(N, out=r["out"]),
    "reduce": lambda api, r: api.reduce(r["a"]),
    "shift1up": lambda api, r: api.shift1up(r["a"], 9, out=r["out"]),
    "copy": lambda api, r: api.copy(r["a"], out=r["out"]),
}

_COMPOSITES = {
    "reverse": lambda api, r: api.reverse(r["a"], out=r["out"]),
    "split": lambda api, r: api.split(r["a"], r["flags"], out=r["out"]),
}


def _inputs(svm, rng):
    return {
        "a": svm.array(rng.integers(0, 2**31, N, dtype=np.uint32)),
        "b": svm.array(rng.integers(1, 2**16, N, dtype=np.uint32)),
        "flags": svm.array(rng.integers(0, 2, N, dtype=np.uint32)),
        "heads": svm.array((rng.integers(0, 4, N) == 0).astype(np.uint32)),
        "idx": svm.array(rng.permutation(N).astype(np.uint32)),
        "out": svm.zeros(N),
    }


def _value(ret):
    """Normalize a primitive's return for comparison (arrays copied,
    futures read, tuples recursed)."""
    if ret is None:
        return None
    if isinstance(ret, SVMArray):
        return ret.to_numpy()
    if isinstance(ret, tuple):
        return tuple(_value(x) for x in ret)
    if hasattr(ret, "value"):  # ScalarFuture — resolved after lazy exit
        return int(ret.value)
    return int(ret)


def _values_equal(a, b) -> bool:
    if isinstance(a, tuple):
        return (isinstance(b, tuple) and len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, np.ndarray):
        return isinstance(b, np.ndarray) and np.array_equal(a, b)
    return a == b


def _run(table, name, vlen, lmul, mode, lazy=False, backend=None):
    """One tier's run: returns ({input name: final contents},
    normalized return value, {category: nonzero count})."""
    svm = SVM(vlen=vlen, mode=mode, lmul=LMUL(lmul), backend=backend)
    rng = np.random.default_rng(0xBEEF)
    r = _inputs(svm, rng)
    svm.reset()
    if lazy:
        with svm.lazy() as lz:
            ret = table[name](lz, r)
    else:
        ret = table[name](svm, r)
    snap = svm.machine.counters.snapshot()
    state = {k: v.to_numpy() for k, v in r.items()}
    counts = {cat.value: k for cat, k in snap.by_category.items() if k}
    return state, _value(ret), counts


def _run_native(table, name, vlen, lmul, backend="native"):
    """The native tier's observation: run the plan twice in one
    context (fresh α-equivalent inputs each time) and report the
    SECOND execution — the one that replays the compiled C kernel
    with the recorded charge profile rather than the codegen warm-up."""
    svm = SVM(vlen=vlen, mode="fast", lmul=LMUL(lmul), backend=backend)
    state = ret = counts = None
    for _ in range(2):
        rng = np.random.default_rng(0xBEEF)
        r = _inputs(svm, rng)
        svm.reset()
        with svm.lazy() as lz:
            ret = table[name](lz, r)
        snap = svm.machine.counters.snapshot()
        state = {k: v.to_numpy() for k, v in r.items()}
        counts = {cat.value: k for cat, k in snap.by_category.items() if k}
    return state, _value(ret), counts


def _assert_tier_matches(ref, got, *, counters=True, label=""):
    ref_state, ref_val, ref_counts = ref
    got_state, got_val, got_counts = got
    for k in ref_state:
        assert np.array_equal(ref_state[k], got_state[k]), \
            f"{label}: array {k!r} differs"
    assert _values_equal(ref_val, got_val), f"{label}: return value differs"
    if counters:
        assert ref_counts == got_counts, f"{label}: counters differ"


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------

def test_invoke_table_complete():
    """The suite covers exactly the registry's non-composite surface."""
    registered = {s.name for s in opspec.iter_specs() if not s.composite}
    assert set(_INVOKE) == registered
    composite = {s.name for s in opspec.iter_specs() if s.composite}
    assert set(_COMPOSITES) == composite


@pytest.mark.parametrize("vlen,lmul", GRID)
@pytest.mark.parametrize("name", sorted(_INVOKE))
def test_five_tier_identity(name, vlen, lmul):
    strict = _run(_INVOKE, name, vlen, lmul, "strict")
    fast = _run(_INVOKE, name, vlen, lmul, "fast")
    interp = _run(_INVOKE, name, vlen, lmul, "fast", lazy=True,
                  backend="interp")
    codegen = _run(_INVOKE, name, vlen, lmul, "fast", lazy=True,
                   backend="codegen")
    native = _run_native(_INVOKE, name, vlen, lmul)
    _assert_tier_matches(strict, fast, label=f"{name} fast")
    _assert_tier_matches(strict, interp, label=f"{name} lazy-interp")
    _assert_tier_matches(strict, codegen, label=f"{name} lazy-codegen")
    _assert_tier_matches(strict, native, label=f"{name} lazy-native")


@pytest.mark.parametrize("name", sorted(_INVOKE))
def test_no_toolchain_fallback(name, monkeypatch):
    """With the toolchain disabled the native tier must degrade to
    codegen transparently — identical results AND counters."""
    from repro.engine import native as native_mod

    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    native_mod.reset_native_caches()
    try:
        assert not native_mod.native_available()
        strict = _run(_INVOKE, name, 128, 1, "strict")
        fell_back = _run_native(_INVOKE, name, 128, 1)
        _assert_tier_matches(strict, fell_back,
                             label=f"{name} native-fallback")
    finally:
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        native_mod.reset_native_caches()


@pytest.mark.parametrize("name", sorted(_INVOKE))
def test_speed_mode_results_identity(name):
    """``native-speed`` keeps results bit-identical; its counters are
    compiled out, so only the data contract is asserted."""
    strict = _run(_INVOKE, name, 128, 1, "strict")
    speed = _run_native(_INVOKE, name, 128, 1, backend="native-speed")
    _assert_tier_matches(strict, speed, counters=False,
                         label=f"{name} native-speed")


@pytest.mark.parametrize("vlen,lmul", GRID)
@pytest.mark.parametrize("name", sorted(_COMPOSITES))
def test_composite_identity(name, vlen, lmul):
    strict = _run(_COMPOSITES, name, vlen, lmul, "strict")
    fast = _run(_COMPOSITES, name, vlen, lmul, "fast")
    interp = _run(_COMPOSITES, name, vlen, lmul, "fast", lazy=True,
                  backend="interp")
    codegen = _run(_COMPOSITES, name, vlen, lmul, "fast", lazy=True,
                   backend="codegen")
    _assert_tier_matches(strict, fast, label=f"{name} fast")
    # captured composites lower to plan nodes with uncharged scratch
    # temporaries; results must still match bit-for-bit
    _assert_tier_matches(strict, interp, counters=False,
                         label=f"{name} lazy-interp")
    _assert_tier_matches(strict, codegen, counters=False,
                         label=f"{name} lazy-codegen")

"""Tests for the permutation primitive class (§4.2)."""

import numpy as np
import pytest

from repro.rvv.counters import Cat


class TestPermute:
    def test_scatter_semantics(self, svm):
        """Listing 5: dst[index[i]] = src[i]."""
        src = svm.array([10, 20, 30, 40])
        index = svm.array([2, 0, 3, 1])
        dst = svm.permute(src, index)
        assert dst.to_numpy().tolist() == [20, 40, 10, 30]

    def test_identity(self, svm, rng):
        data = rng.integers(0, 100, 17, dtype=np.uint32)
        src = svm.array(data)
        idx = svm.array(np.arange(17, dtype=np.uint32))
        assert np.array_equal(svm.permute(src, idx).to_numpy(), data)

    def test_random_permutation_roundtrip(self, svm, rng):
        data = rng.integers(0, 2**32, 33, dtype=np.uint32)
        perm = rng.permutation(33).astype(np.uint32)
        src = svm.array(data)
        dst = svm.permute(src, svm.array(perm))
        expect = np.empty(33, dtype=np.uint32)
        expect[perm] = data
        assert np.array_equal(dst.to_numpy(), expect)

    def test_uses_indexed_store(self, svm):
        src = svm.array([1, 2])
        idx = svm.array([1, 0])
        svm.reset()
        svm.permute(src, idx)
        assert svm.counters[Cat.VMEM_INDEXED] >= 1

    def test_out_param(self, svm):
        src = svm.array([5, 6])
        idx = svm.array([1, 0])
        out = svm.zeros(2)
        got = svm.permute(src, idx, out=out)
        assert got is out and out.to_numpy().tolist() == [6, 5]


class TestBackPermute:
    def test_gather_semantics(self, svm):
        src = svm.array([10, 20, 30, 40])
        index = svm.array([2, 0, 3, 1])
        dst = svm.back_permute(src, index)
        assert dst.to_numpy().tolist() == [30, 10, 40, 20]

    def test_inverse_of_permute(self, svm, rng):
        data = rng.integers(0, 2**32, 21, dtype=np.uint32)
        perm = rng.permutation(21).astype(np.uint32)
        src = svm.array(data)
        idx = svm.array(perm)
        there = svm.permute(src, idx)
        back = svm.back_permute(there, idx)
        assert np.array_equal(back.to_numpy(), data)


class TestPack:
    def test_compaction(self, svm):
        src = svm.array([1, 2, 3, 4, 5, 6])
        flags = svm.array([0, 1, 1, 0, 0, 1])
        dst, kept = svm.pack(src, flags)
        assert kept == 3
        assert dst.to_numpy()[:3].tolist() == [2, 3, 6]

    def test_none_kept(self, svm):
        src = svm.array([1, 2, 3])
        dst, kept = svm.pack(src, svm.zeros(3))
        assert kept == 0

    def test_all_kept_preserves_order(self, svm, rng):
        data = rng.integers(0, 100, 19, dtype=np.uint32)
        src = svm.array(data)
        dst, kept = svm.pack(src, svm.array(np.ones(19, dtype=np.uint32)))
        assert kept == 19
        assert np.array_equal(dst.to_numpy(), data)

    def test_order_preserved_across_strips(self, svm):
        """Survivors from later strips land after earlier ones."""
        n = 20  # 5 strips at VLEN=128
        data = np.arange(n, dtype=np.uint32)
        keep = (data % 3 == 0).astype(np.uint32)
        dst, kept = svm.pack(svm.array(data), svm.array(keep))
        assert dst.to_numpy()[:kept].tolist() == list(range(0, n, 3))


class TestReverse:
    def test_semantics(self, svm, rng):
        data = rng.integers(0, 2**32, 27, dtype=np.uint32)
        out = svm.reverse(svm.array(data))
        assert np.array_equal(out.to_numpy(), data[::-1])

    def test_single(self, svm):
        assert svm.reverse(svm.array([42])).to_numpy().tolist() == [42]

    def test_involution(self, svm, rng):
        data = rng.integers(0, 100, 11, dtype=np.uint32)
        a = svm.array(data)
        assert np.array_equal(svm.reverse(svm.reverse(a)).to_numpy(), data)

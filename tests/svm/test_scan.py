"""Tests for the unsegmented scan primitives (§4.3): all operators,
inclusive and exclusive, against the per-element oracle."""

import numpy as np
import pytest

from repro.rvv.counters import Cat
from repro.svm.scan import inner_scan_steps
from tests.oracles import OPS, scan_oracle


class TestInnerScanSteps:
    """Figure 1: ceil(lg vl) slideup-and-add iterations."""

    @pytest.mark.parametrize("vl,steps", [
        (0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (32, 5), (100, 7),
        (256, 8),
    ])
    def test_values(self, vl, steps):
        assert inner_scan_steps(vl) == steps


class TestInclusiveScan:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_all_operators(self, svm, rng, op):
        fn, identity = OPS[op]
        data = rng.integers(0, 2**32, 37, dtype=np.uint32)
        a = svm.array(data)
        svm.scan(a, op)
        assert np.array_equal(a.to_numpy(), scan_oracle(data, fn, identity))

    def test_plus_scan_alias(self, svm):
        a = svm.array([1, 2, 3, 4])
        svm.plus_scan(a)
        assert a.to_numpy().tolist() == [1, 3, 6, 10]

    def test_carry_across_strips(self, svm):
        """VLEN=128 gives vl=4: 12 elements need 3 strips, exercising
        the carry chain (Listing 6's carry = src[vl-1])."""
        a = svm.array([1] * 12)
        svm.plus_scan(a)
        assert a.to_numpy().tolist() == list(range(1, 13))

    def test_modular_wrap(self, svm):
        a = svm.array([2**32 - 1, 5])
        svm.plus_scan(a)
        assert a.to_numpy().tolist() == [2**32 - 1, 4]

    def test_single_element(self, svm):
        a = svm.array([9])
        svm.plus_scan(a)
        assert a.to_numpy().tolist() == [9]

    def test_empty(self, svm):
        a = svm.array([])
        svm.plus_scan(a)
        assert a.to_numpy().size == 0


class TestExclusiveScan:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_all_operators(self, svm, rng, op):
        fn, identity = OPS[op]
        data = rng.integers(0, 2**32, 37, dtype=np.uint32)
        a = svm.array(data)
        svm.scan_exclusive(a, op)
        expect = scan_oracle(data, fn, identity, inclusive=False)
        assert np.array_equal(a.to_numpy(), expect)

    def test_blelloch_definition(self, svm):
        """[I, a0, a0+a1, ...] — the paper's §1 definition."""
        a = svm.array([3, 1, 7, 0, 4])
        svm.scan_exclusive(a)
        assert a.to_numpy().tolist() == [0, 3, 4, 11, 11]

    def test_min_identity_first(self, svm):
        a = svm.array([5, 3])
        svm.scan_exclusive(a, "min")
        assert a.to_numpy().tolist() == [2**32 - 1, 5]

    def test_relation_to_inclusive(self, svm, rng):
        data = rng.integers(0, 1000, 29, dtype=np.uint32)
        a, b = svm.array(data), svm.array(data)
        svm.plus_scan(a)
        svm.scan_exclusive(b)
        incl, excl = a.to_numpy(), b.to_numpy()
        assert np.array_equal(excl[1:], incl[:-1])
        assert excl[0] == 0


class TestScanCounts:
    def test_paper_per_strip_cost(self):
        """Table 3's 84-per-strip decomposition at vl=32."""
        from repro import SVM
        svm = SVM(vlen=1024, codegen="paper", mode="strict")
        a = svm.array(np.zeros(64, dtype=np.uint32))  # 2 full strips
        svm.reset()
        svm.plus_scan(a)
        assert svm.instructions == 31 + 2 * 84

    def test_inner_loop_dominates_by_category(self, svm):
        a = svm.array(np.zeros(32, dtype=np.uint32))
        svm.reset()
        svm.plus_scan(a)
        # 8 strips of vl=4 (VLEN=128): 2 slideup-add steps each
        assert svm.counters[Cat.VPERM] >= 8 * 2  # slideups (+ broadcast)
        assert svm.counters[Cat.VARITH] == 8 * 2 + 8  # adds + carry adds

    def test_count_data_independent(self, svm, rng):
        counts = []
        for seed in (1, 2):
            data = np.random.default_rng(seed).integers(0, 2**32, 50, dtype=np.uint32)
            a = svm.array(data)
            svm.reset()
            svm.plus_scan(a)
            counts.append(svm.instructions)
        assert counts[0] == counts[1]

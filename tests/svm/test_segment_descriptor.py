"""Unit tests for the three segment descriptors and conversions (§5)."""

import numpy as np
import pytest

from repro.errors import SegmentError
from repro.svm.segment_descriptor import (
    head_flags_to_head_pointers,
    head_flags_to_lengths,
    head_pointers_to_head_flags,
    lengths_to_head_flags,
    segment_count,
    segment_ids,
    validate_head_flags,
)


class TestLengths:
    def test_to_flags(self):
        assert lengths_to_head_flags([2, 3]).tolist() == [1, 0, 1, 0, 0]

    def test_from_flags(self):
        assert head_flags_to_lengths([1, 0, 1, 0, 0]).tolist() == [2, 3]

    def test_implicit_first_head(self):
        """Element 0 heads a segment even without a flag — the
        convention the kernels use (Listing 10's vmv.s.x)."""
        assert head_flags_to_lengths([0, 0, 1]).tolist() == [2, 1]

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 6, 20)
        back = head_flags_to_lengths(lengths_to_head_flags(lengths))
        assert back.tolist() == lengths.tolist()

    def test_zero_length_rejected(self):
        with pytest.raises(SegmentError):
            lengths_to_head_flags([2, 0, 1])

    def test_sum_check(self):
        with pytest.raises(SegmentError):
            lengths_to_head_flags([2, 2], n=5)

    def test_empty(self):
        assert lengths_to_head_flags([]).size == 0
        assert head_flags_to_lengths([]).size == 0


class TestHeadPointers:
    def test_to_flags(self):
        assert head_pointers_to_head_flags([0, 2], 4).tolist() == [1, 0, 1, 0]

    def test_from_flags(self):
        assert head_flags_to_head_pointers([1, 0, 0, 1]).tolist() == [0, 3]

    def test_implicit_zero(self):
        assert head_flags_to_head_pointers([0, 1]).tolist() == [0, 1]

    def test_must_start_at_zero(self):
        with pytest.raises(SegmentError):
            head_pointers_to_head_flags([1, 2], 4)

    def test_must_be_increasing(self):
        with pytest.raises(SegmentError):
            head_pointers_to_head_flags([0, 2, 2], 4)

    def test_range_check(self):
        with pytest.raises(SegmentError):
            head_pointers_to_head_flags([0, 9], 4)


class TestValidation:
    def test_only_binary_values(self):
        with pytest.raises(SegmentError):
            validate_head_flags([0, 2])

    def test_rejects_2d(self):
        with pytest.raises(SegmentError):
            validate_head_flags(np.zeros((2, 2)))


class TestDerived:
    def test_segment_count(self):
        assert segment_count([0, 0, 1, 0, 1]) == 3
        assert segment_count([1, 0]) == 1

    def test_segment_ids(self):
        assert segment_ids([1, 0, 1, 0, 0]).tolist() == [0, 0, 1, 1, 1]
        assert segment_ids([0, 0, 1]).tolist() == [0, 0, 1]

    def test_empty(self):
        assert segment_ids([]).size == 0
        assert segment_count([]) == 0

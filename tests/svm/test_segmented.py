"""Tests for the segmented scan primitives (§5): all operators,
inclusive and exclusive, against the per-element oracle — with
particular attention to segments crossing strip boundaries."""

import numpy as np
import pytest

from tests.oracles import OPS, seg_scan_oracle


def _random_case(rng, n, density=0.25):
    data = rng.integers(0, 2**32, n, dtype=np.uint32)
    flags = (rng.random(n) < density).astype(np.uint32)
    return data, flags


class TestInclusiveSegScan:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_all_operators(self, svm, rng, op):
        fn, identity = OPS[op]
        data, flags = _random_case(rng, 37)
        a, f = svm.array(data), svm.array(flags)
        svm.seg_scan(a, f, op)
        expect = seg_scan_oracle(data, flags, fn, identity)
        assert np.array_equal(a.to_numpy(), expect)

    def test_paper_example_shape(self, svm):
        a = svm.array([1, 2, 3, 4, 5, 6])
        f = svm.array([1, 0, 1, 0, 0, 1])
        svm.seg_plus_scan(a, f)
        assert a.to_numpy().tolist() == [1, 3, 3, 7, 12, 6]

    def test_no_flags_equals_unsegmented(self, svm, rng):
        """A single segment must reproduce the unsegmented scan — the
        §5.2 requirement driving the in-register algorithm."""
        data = rng.integers(0, 1000, 29, dtype=np.uint32)
        a, f = svm.array(data), svm.zeros(29)
        b = svm.array(data)
        svm.seg_plus_scan(a, f)
        svm.plus_scan(b)
        assert np.array_equal(a.to_numpy(), b.to_numpy())

    def test_all_flags_identity_scan(self, svm):
        """Every lane its own segment: output == input."""
        data = np.array([5, 7, 1, 9], dtype=np.uint32)
        a = svm.array(data)
        f = svm.array(np.ones(4, dtype=np.uint32))
        svm.seg_plus_scan(a, f)
        assert np.array_equal(a.to_numpy(), data)

    def test_segment_spanning_strips(self, svm):
        """VLEN=128 -> vl=4; a 12-element segment spans 3 strips and
        must carry correctly (the vmsbf carry mask, Listing 10)."""
        a = svm.array([1] * 12)
        f = svm.zeros(12)
        svm.seg_plus_scan(a, f)
        assert a.to_numpy().tolist() == list(range(1, 13))

    def test_head_at_strip_boundary(self, svm):
        """A head exactly at a strip start must block the carry."""
        a = svm.array([1] * 8)
        flags = np.zeros(8, dtype=np.uint32)
        flags[4] = 1  # strip boundary at VLEN=128 (vl=4)
        f = svm.array(flags)
        svm.seg_plus_scan(a, f)
        assert a.to_numpy().tolist() == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_head_just_after_strip_boundary(self, svm):
        a = svm.array([1] * 8)
        flags = np.zeros(8, dtype=np.uint32)
        flags[5] = 1
        f = svm.array(flags)
        svm.seg_plus_scan(a, f)
        assert a.to_numpy().tolist() == [1, 2, 3, 4, 5, 1, 2, 3]

    def test_flag_on_element_zero_irrelevant(self, svm):
        for first in (0, 1):
            a = svm.array([2, 3])
            f = svm.array([first, 0])
            svm.seg_plus_scan(a, f)
            assert a.to_numpy().tolist() == [2, 5]


class TestExclusiveSegScan:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_all_operators(self, svm, rng, op):
        fn, identity = OPS[op]
        data, flags = _random_case(rng, 37)
        a, f = svm.array(data), svm.array(flags)
        svm.seg_scan(a, f, op, inclusive=False)
        expect = seg_scan_oracle(data, flags, fn, identity, inclusive=False)
        assert np.array_equal(a.to_numpy(), expect)

    def test_heads_get_identity(self, svm):
        a = svm.array([5, 6, 7, 8])
        f = svm.array([0, 0, 1, 0])
        svm.seg_scan(a, f, "plus", inclusive=False)
        assert a.to_numpy().tolist() == [0, 5, 0, 7]

    def test_exclusive_across_strips(self, svm):
        a = svm.array([1] * 10)
        f = svm.zeros(10)
        svm.seg_scan(a, f, "plus", inclusive=False)
        assert a.to_numpy().tolist() == list(range(10))


class TestSegScanCounts:
    def test_paper_per_strip_decomposition(self):
        """The calibration's centerpiece: 39 + strips*(22 + 12*lg vl),
        exact against Tables 4/7."""
        from repro import SVM
        for vlen, expected_per_strip in ((128, 46), (256, 58), (1024, 82)):
            svm = SVM(vlen=vlen, codegen="paper", mode="strict")
            lanes = vlen // 32
            a = svm.array(np.zeros(lanes * 3, dtype=np.uint32))
            f = svm.zeros(lanes * 3)
            svm.reset()
            svm.seg_plus_scan(a, f)
            assert svm.instructions == 39 + 3 * expected_per_strip, vlen

    def test_count_independent_of_flags(self, svm, rng):
        counts = set()
        for density in (0.0, 0.5, 1.0):
            data = rng.integers(0, 100, 40, dtype=np.uint32)
            flags = (np.random.default_rng(1).random(40) < density).astype(np.uint32)
            a, f = svm.array(data), svm.array(flags)
            svm.reset()
            svm.seg_plus_scan(a, f)
            counts.add(svm.instructions)
        assert len(counts) == 1

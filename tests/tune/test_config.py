"""ExecConfig layering: defaults <- REPRO_* env <- kwargs <- per-call.

The contract under test (ISSUE 10 tentpole, stage 1): one resolution
rule for every execution axis, the environment read at resolve time
(never import time), malformed env values silently dropping to the
layer below, and explicit arguments — the API surface — raising
:class:`~repro.errors.ConfigurationError` loudly.
"""

from __future__ import annotations

import pytest

from repro import SVM
from repro.config import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VARS,
    ExecConfig,
    default_cache_dir,
    env_backend,
    env_bench_jobs,
    native_toolchain_env,
)
from repro.errors import ConfigurationError
from repro.rvv.types import LMUL


class TestDefaults:
    def test_builtin_defaults(self):
        cfg = ExecConfig()
        assert cfg.vlen == 1024
        assert cfg.lmul == LMUL.M1
        assert cfg.backend is None
        assert cfg.digit_bits == 2
        assert cfg.cache_dir is None
        assert cfg.native_disable is False
        assert cfg.bench_jobs == 1

    def test_frozen_and_hashable(self):
        cfg = ExecConfig()
        with pytest.raises(Exception):
            cfg.vlen = 2048
        assert hash(ExecConfig(vlen=256)) == hash(ExecConfig(vlen=256))

    def test_lmul_coerced_from_int(self):
        assert ExecConfig(lmul=4).lmul is LMUL.M4


class TestEnvLayer:
    def test_env_overlays_defaults(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "256")
        monkeypatch.setenv(ENV_VARS["lmul"], "8")
        monkeypatch.setenv(ENV_VARS["backend"], "interp")
        cfg = ExecConfig.from_env()
        assert cfg.vlen == 256
        assert cfg.lmul is LMUL.M8
        assert cfg.backend == "interp"
        assert cfg.digit_bits == 2  # untouched axis keeps its default

    def test_env_read_at_resolve_time_not_import_time(self, monkeypatch):
        assert ExecConfig.from_env().vlen == 1024
        monkeypatch.setenv(ENV_VARS["vlen"], "512")
        assert ExecConfig.from_env().vlen == 512

    @pytest.mark.parametrize("var,value", [
        ("vlen", "banana"),      # not an int
        ("vlen", "8"),           # int but < 32
        ("backend", "turbo"),    # unknown backend
        ("lmul", "3"),           # not a power-of-two LMUL
        ("digit_bits", "99"),    # out of range
        ("bench_jobs", "0"),     # < 1
    ])
    def test_malformed_env_is_ignored(self, monkeypatch, var, value):
        monkeypatch.setenv(ENV_VARS[var], value)
        cfg = ExecConfig.from_env()          # must not raise
        assert getattr(cfg, var) == getattr(ExecConfig(), var)

    def test_malformed_env_keeps_good_siblings(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "nope")
        monkeypatch.setenv(ENV_VARS["backend"], "interp")
        cfg = ExecConfig.from_env()
        assert cfg.vlen == 1024              # bad field dropped
        assert cfg.backend == "interp"       # good field survives


class TestExplicitLayer:
    def test_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "256")
        assert ExecConfig.resolve(vlen=2048).vlen == 2048

    def test_none_means_not_given(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "256")
        assert ExecConfig.resolve(vlen=None).vlen == 256

    def test_explicit_bad_value_raises(self):
        with pytest.raises(ConfigurationError):
            ExecConfig(vlen=8)
        with pytest.raises(ConfigurationError):
            ExecConfig(backend="turbo")
        with pytest.raises(ConfigurationError):
            ExecConfig(digit_bits=0)

    def test_unknown_axis_raises(self):
        with pytest.raises(ConfigurationError):
            ExecConfig().override(warp_factor=9)

    def test_override_returns_self_when_no_delta(self):
        cfg = ExecConfig()
        assert cfg.override(vlen=None) is cfg

    def test_roundtrip_dict(self):
        cfg = ExecConfig(vlen=256, lmul=LMUL.M4, backend="interp")
        assert ExecConfig.from_dict(cfg.as_dict()) == cfg

    def test_as_dict_is_json_plain(self):
        doc = ExecConfig(lmul=LMUL.M8).as_dict()
        assert doc["lmul"] == 8 and type(doc["lmul"]) is int


class TestSVMIntegration:
    def test_svm_holds_resolved_config(self):
        svm = SVM(vlen=256, lmul=LMUL.M2)
        assert svm.config.vlen == 256
        assert svm.config.lmul is LMUL.M2
        assert svm.lmul is LMUL.M2
        assert svm.machine.vlen == 256

    def test_svm_env_layer(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "256")
        assert SVM().config.vlen == 256
        # explicit kwarg still wins over env
        assert SVM(vlen=128).config.vlen == 128

    def test_svm_explicit_config_object_skips_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["vlen"], "256")
        svm = SVM(config=ExecConfig(vlen=2048))
        assert svm.config.vlen == 2048

    def test_svm_explicit_machine_wins_vlen(self):
        from repro import RVVMachine
        svm = SVM(RVVMachine(vlen=128), vlen=1024)
        assert svm.machine.vlen == 128
        assert svm.config.vlen == 128       # config reflects reality

    def test_svm_rejects_bad_tune(self):
        with pytest.raises(ConfigurationError):
            SVM(tune="always")


class TestCallTimeHelpers:
    def test_env_backend(self, monkeypatch):
        assert env_backend() is None
        monkeypatch.setenv(ENV_VARS["backend"], "interp")
        assert env_backend() == "interp"

    def test_env_bench_jobs_clamped(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["bench_jobs"], "-3")
        assert env_bench_jobs() == 1
        monkeypatch.setenv(ENV_VARS["bench_jobs"], "4")
        assert env_bench_jobs() == 4

    def test_native_toolchain_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VARS["native_cc"], "/usr/bin/cc")
        monkeypatch.setenv(ENV_VARS["native_disable"], "1")
        assert native_toolchain_env() == ("/usr/bin/cc", True)

    def test_default_cache_dir_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VARS["cache_dir"], str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_backend_constants(self):
        assert DEFAULT_BACKEND in BACKENDS

"""TuningDB persistence: envelope verification, atomicity, maintenance.

Safety mirrors the PlanStore contract (tests/engine/test_plan_store.py):
every load re-verifies schema + engine code fingerprint + the file's
own plan fingerprint, any mismatch or corruption is a silent miss, and
prune evicts exactly what a load would reject. A poisoned tuning DB
must never raise into the dispatch path — at worst a plan runs at the
untuned default.
"""

from __future__ import annotations

import json

from repro.engine.cache import code_fingerprint
from repro.tune import TUNE_SCHEMA_VERSION, TuningDB
from repro.tune.db import entry_key

FP = "ab" * 32  # a plausible sha256 hex fingerprint
ENTRIES = {entry_key(128, "paper", 10): {"lmul": 4, "instructions": 112,
                                         "n": 1000, "config": {}}}


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        assert db.load(FP) == ENTRIES
        assert db.hits >= 1 and db.write_errors == 0

    def test_file_layout(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        path = tmp_path / "tune" / f"{FP}.tune"
        assert path.is_file()
        envelope = json.loads(path.read_text())      # human-inspectable
        assert envelope["schema"] == TUNE_SCHEMA_VERSION
        assert envelope["code"] == code_fingerprint()
        assert envelope["fingerprint"] == FP
        assert envelope["entries"] == ENTRIES

    def test_missing_is_silent_miss(self, tmp_path):
        db = TuningDB(tmp_path)
        assert db.load(FP) == {}
        assert db.misses == 1

    def test_merge_accumulates(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, {entry_key(128, "paper", 7): {"lmul": 1, "instructions": 5}})
        db.save(FP, {entry_key(128, "paper", 12): {"lmul": 8, "instructions": 9}})
        assert len(db.load(FP)) == 2

    def test_merge_false_clobbers(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, {entry_key(128, "paper", 7): {"lmul": 1}})
        db.save(FP, ENTRIES, merge=False)
        assert db.load(FP) == ENTRIES

    def test_nonhex_fingerprint_is_hashed_to_safe_name(self, tmp_path):
        db = TuningDB(tmp_path)
        evil = "../../escape"
        db.save(evil, ENTRIES)
        assert db.load(evil) == ENTRIES
        assert all(p.parent == db.tune_dir for p in db.entries())


class TestGuards:
    def _poison(self, tmp_path, mutate):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        path = db._path(FP)
        envelope = json.loads(path.read_text())
        mutate(envelope)
        path.write_text(json.dumps(envelope))
        return TuningDB(tmp_path)  # fresh counters

    def test_schema_mismatch_is_miss(self, tmp_path):
        db = self._poison(tmp_path, lambda e: e.update(schema=999))
        assert db.load(FP) == {} and db.misses == 1

    def test_code_fingerprint_mismatch_is_miss(self, tmp_path):
        db = self._poison(tmp_path, lambda e: e.update(code="stale"))
        assert db.load(FP) == {}

    def test_fingerprint_mismatch_is_miss(self, tmp_path):
        db = self._poison(tmp_path, lambda e: e.update(fingerprint="cd" * 32))
        assert db.load(FP) == {}

    def test_truncated_file_is_miss(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        path = db._path(FP)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert TuningDB(tmp_path).load(FP) == {}

    def test_non_dict_entries_is_miss(self, tmp_path):
        db = self._poison(tmp_path, lambda e: e.update(entries=[1, 2]))
        assert db.load(FP) == {}

    def test_unwritable_root_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        db = TuningDB(blocker)        # tune/ cannot be created under a file
        db.save(FP, ENTRIES)          # must not raise
        assert db.write_errors == 1


class TestMaintenance:
    def test_entries_and_fingerprints(self, tmp_path):
        db = TuningDB(tmp_path)
        assert db.entries() == []     # missing directory: no error
        db.save(FP, ENTRIES)
        assert db.fingerprints() == [FP]

    def test_prune_evicts_stale_and_temps(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        stale = db.tune_dir / ("cd" * 32 + ".tune")
        stale.write_text(json.dumps({"schema": 0, "code": "old",
                                     "fingerprint": "x", "entries": {}}))
        (db.tune_dir / "junk.tmp.123").write_text("partial")
        counts = db.prune()
        assert counts == {"removed": 1, "kept": 1, "temps": 1}
        assert db.load(FP) == ENTRIES  # fresh entry survived

    def test_clear(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        db.save("cd" * 32, ENTRIES)
        assert db.clear() == 2
        assert db.entries() == []

    def test_stats_dict(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save(FP, ENTRIES)
        stats = db.stats_dict(scan=True)
        assert stats["entries"] == 1
        assert stats["stale"] == 0
        assert stats["bytes"] > 0
        assert stats["schema"] == TUNE_SCHEMA_VERSION
        assert stats["code"] == code_fingerprint()[:12]

"""Two processes sharing one cache dir must not corrupt the TuningDB.

Mirror of tests/engine/test_plan_store_concurrent.py for the tuning
store: concurrent sweeps (the serve-daemon-plus-ad-hoc-CLI case) write
per-fingerprint JSON files with atomic temp + rename, so racing
writers settle on complete, loadable envelopes and a subsequent
``SVM(tune="auto")`` consumer sees a valid policy.
"""

from __future__ import annotations

import json
import multiprocessing as mp

from repro.tune import TunePolicy, TuningDB, run_tune_sweep

SIZES = (64, 3000)
VLENS = (128,)
ROUNDS = 6


def _worker(cache_dir: str, seed: int, out_q) -> None:
    """Many sweep-and-persist rounds against the shared DB — identical
    grids, so both processes race on the very same files every round."""
    try:
        entry_counts = []
        for _ in range(ROUNDS):
            db = TuningDB(cache_dir)
            _, fitted = run_tune_sweep(
                pipelines=("chain_scan",), sizes=SIZES, vlens=VLENS,
                jobs=1, db=db, seed=seed,
            )
            entry_counts.append(
                sorted((fp, sorted(table)) for fp, table in fitted.items())
            )
        out_q.put(("ok", seed, entry_counts))
    except BaseException as exc:  # noqa: BLE001 - ship it to the parent
        out_q.put(("error", seed, repr(exc)))


def test_two_processes_share_tuning_db_without_corruption(tmp_path):
    cache_dir = str(tmp_path / "store")
    ctx = mp.get_context("spawn")  # a real second interpreter
    out_q = ctx.Queue()
    procs = [ctx.Process(target=_worker, args=(cache_dir, 0, out_q))
             for _ in range(2)]
    for p in procs:
        p.start()
    outcomes = [out_q.get(timeout=600) for _ in procs]
    for p in procs:
        p.join(timeout=600)
        assert p.exitcode == 0

    assert all(status == "ok" for status, _, _ in outcomes), outcomes
    # counts are data-oblivious: both processes fit identical tables
    (_, _, c1), (_, _, c2) = outcomes
    assert c1 == c2

    # every surviving file is complete, parseable JSON with the full
    # envelope (no torn writes), and no temp files were abandoned
    db = TuningDB(cache_dir)
    files = db.entries()
    assert files, "tuning DB ended up empty"
    for path in files:
        envelope = json.loads(path.read_text())
        assert set(envelope) >= {"schema", "code", "fingerprint", "entries"}
        assert db.load(path.stem) == envelope["entries"]
    assert not list(db.tune_dir.glob("*.tmp.*"))

    # and the surviving DB actually drives a policy
    pol = TunePolicy.load(cache_dir)
    assert not pol._empty
    fp = files[0].stem
    assert pol.choose(fp, 3000, 128, "paper") is not None

"""repro.lmul is a deprecated alias of repro.tune (ISSUE 10 satellite).

The old modules must keep working — same names, same behavior — while
warning once at import. Existing benchmarks and user scripts importing
``repro.lmul`` therefore keep running through the transition.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest


def _fresh_import(name: str):
    """Import ``name`` as if for the first time (module-level warnings
    fire at first import only)."""
    for mod in list(sys.modules):
        if mod == name or mod.startswith(name + "."):
            del sys.modules[mod]
    return importlib.import_module(name)


@pytest.mark.parametrize("module", [
    "repro.lmul", "repro.lmul.advisor", "repro.lmul.sweep",
])
def test_import_warns_deprecation(module):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        _fresh_import(module)


def test_old_names_alias_new_implementations():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_advisor = _fresh_import("repro.lmul.advisor")
        legacy_sweep = _fresh_import("repro.lmul.sweep")
    from repro.tune import advisor, measure

    assert legacy_advisor.choose_lmul is advisor.choose_lmul
    assert legacy_advisor.predict_scan_count is advisor.predict_scan_count
    assert legacy_advisor.LmulPrediction is advisor.LmulPrediction
    assert legacy_sweep.measure_kernel is measure.measure_kernel
    assert legacy_sweep.sweep_lmul is measure.sweep_lmul
    assert legacy_sweep.sweep_vlen is measure.sweep_vlen


def test_package_reexports_survive():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = _fresh_import("repro.lmul")
    from repro.tune import choose_lmul

    assert legacy.choose_lmul is choose_lmul

"""The identity gate: SVM(tune="auto") vs a pinned config.

The tentpole's correctness contract — tuned dispatch is *pure config
selection*: for whatever LMUL the policy picks, results are
bit-identical and counters identical to an SVM explicitly pinned to
that LMUL. Retagging happens before the plan-cache key is computed, so
tuned and pinned contexts share plan-cache entries; an unswept shape
or an empty DB runs exactly as without tuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.engine.cache import PlanCache
from repro.rvv.types import LMUL
from repro.tune import TunePolicy, TuningDB, run_tune_sweep

VLEN = 128
N = 3000


@pytest.fixture(scope="module")
def swept_dir(tmp_path_factory):
    """A cache dir holding a real (small) sweep over the chain_scan
    pipeline: both sides of the spill/strip crossover at VLEN=128."""
    root = tmp_path_factory.mktemp("tunedb")
    run_tune_sweep(pipelines=("chain_scan",), sizes=(64, N),
                   vlens=(VLEN,), jobs=1, db=TuningDB(root))
    return root


def _run_chain(svm, n=N):
    data = svm.array(np.arange(1, n + 1, dtype=np.uint32))
    with svm.lazy() as lz:
        lz.p_add(data, 10)
        lz.p_mul(data, 3)
        lz.p_xor(data, 255)
        lz.plus_scan(data)
    return data.to_numpy()


def test_tuned_identical_to_pinned(swept_dir):
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(swept_dir))
    out_tuned = _run_chain(tuned)
    applied = tuned.engine.last_plan.nodes[0].lmul
    assert applied != LMUL.M1, "sweep should pick a larger LMUL at n=3000"

    pinned = SVM(vlen=VLEN, codegen="paper", mode="fast", lmul=applied)
    out_pinned = _run_chain(pinned)

    np.testing.assert_array_equal(out_tuned, out_pinned)
    assert tuned.instructions == pinned.instructions
    assert tuned.counters == pinned.counters


def test_tuned_beats_default_at_large_n(swept_dir):
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(swept_dir))
    _run_chain(tuned)
    default = SVM(vlen=VLEN, codegen="paper", mode="fast")
    _run_chain(default)
    assert tuned.instructions < default.instructions


def test_tuned_shares_plan_cache_with_pinned(swept_dir):
    """Retag-before-key: the tuned context compiles the same cache
    entry the pinned context would, so a shared PlanCache hits."""
    shared = PlanCache()
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(swept_dir), plan_cache=shared)
    _run_chain(tuned)
    applied = tuned.engine.last_plan.nodes[0].lmul
    misses_after_tuned = shared.stats.misses
    pinned = SVM(vlen=VLEN, codegen="paper", mode="fast", lmul=applied,
                 plan_cache=shared)
    _run_chain(pinned)
    assert shared.stats.misses == misses_after_tuned  # pure hit, no recompile
    assert shared.stats.hits > 0


def test_default_sweep_covers_default_preset(tmp_path):
    """The out-of-the-box lifecycle: a default-arg sweep must cover a
    plain ``SVM(tune="auto")`` — whose codegen preset is "ideal", not
    the CLI's "paper" — because the policy lookup is preset-exact."""
    run_tune_sweep(pipelines=("chain_scan",), sizes=(64, N),
                   vlens=(VLEN,), jobs=1, db=TuningDB(tmp_path))
    tuned = SVM(vlen=VLEN, tune="auto", cache_dir=str(tmp_path))
    out_tuned = _run_chain(tuned)
    applied = tuned.engine.last_plan.nodes[0].lmul
    assert applied != LMUL.M1, "default-preset dispatch should hit the DB"

    pinned = SVM(vlen=VLEN, lmul=applied)
    out_pinned = _run_chain(pinned)
    np.testing.assert_array_equal(out_tuned, out_pinned)
    assert tuned.instructions == pinned.instructions


def test_empty_db_is_a_noop(tmp_path):
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(tmp_path / "never-swept"))
    out_tuned = _run_chain(tuned)
    default = SVM(vlen=VLEN, codegen="paper", mode="fast")
    out_default = _run_chain(default)
    np.testing.assert_array_equal(out_tuned, out_default)
    assert tuned.instructions == default.instructions


def test_explicit_per_call_lmul_is_respected(swept_dir):
    """A hand-tuned pipeline (any explicit lmul=) is left alone."""
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(swept_dir))
    data = tuned.array(np.arange(1, N + 1, dtype=np.uint32))
    with tuned.lazy() as lz:
        lz.p_add(data, 10, lmul=LMUL.M2)
        lz.plus_scan(data, lmul=LMUL.M2)
    assert all(nd.lmul is LMUL.M2 for nd in tuned.engine.last_plan.nodes
               if nd.lmul is not None and nd.kind.name not in ("FREE",))


def test_explicit_policy_object(swept_dir):
    """SVM(tune=<TunePolicy>) bypasses the cache-dir convention."""
    pol = TunePolicy.load(swept_dir)
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast", tune=pol)
    _run_chain(tuned)
    assert tuned.engine.last_plan.nodes[0].lmul != LMUL.M1


def test_policy_resolution_is_memoized(swept_dir):
    """Warm dispatch does not re-read the DB: the policy is resolved
    once per SVM and its choices are memoized per shape."""
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=str(swept_dir))
    _run_chain(tuned)
    pol = tuned._tune_policy
    assert pol is not None
    reads = pol.db.hits + pol.db.misses
    for _ in range(5):
        _run_chain(tuned)
    assert tuned._tune_policy is pol           # resolved exactly once
    assert pol.db.hits + pol.db.misses == reads  # no further disk reads


def test_eager_mode_unaffected(swept_dir):
    """Tuning hooks only the lazy plan path; eager calls keep the
    context default."""
    tuned = SVM(vlen=VLEN, codegen="paper", tune="auto",
                cache_dir=str(swept_dir))
    data = tuned.array(np.arange(1, 100, dtype=np.uint32))
    tuned.plus_scan(data)
    default = SVM(vlen=VLEN, codegen="paper")
    data2 = default.array(np.arange(1, 100, dtype=np.uint32))
    default.plus_scan(data2)
    np.testing.assert_array_equal(data.to_numpy(), data2.to_numpy())
    assert tuned.instructions == default.instructions

"""TunePolicy units: bucketing, fitting, lookup, and the apply guard.

The policy is the zero-cost dispatch consumer of the TuningDB: these
tests pin its fit rule (argmin instructions, ties to the smaller
LMUL), the nearest-bucket fallback (min |Δoctave|, ties downward), and
every stand-down condition of :meth:`TunePolicy.apply`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SVM
from repro.rvv.types import LMUL
from repro.tune import TunePolicy, TuningDB, fit_policy, n_bucket
from repro.tune.db import entry_key


def point(fp="fp0", n=1000, vlen=128, codegen="paper", lmul=1, instructions=100):
    return {"fingerprint": fp, "n": n, "vlen": vlen, "codegen": codegen,
            "lmul": lmul, "instructions": instructions, "config": {}}


class TestBucketing:
    @pytest.mark.parametrize("n,bucket", [
        (0, 0), (1, 1), (2, 2), (3, 2), (64, 7),
        (1000, 10), (3000, 12), (100000, 17),
    ])
    def test_n_bucket(self, n, bucket):
        assert n_bucket(n) == bucket

    def test_negative_clamped(self):
        assert n_bucket(-5) == 0


class TestFitPolicy:
    def test_argmin_instructions(self):
        fitted = fit_policy([
            point(lmul=1, instructions=300),
            point(lmul=4, instructions=100),
            point(lmul=8, instructions=200),
        ])
        key = entry_key(128, "paper", n_bucket(1000))
        assert fitted["fp0"][key]["lmul"] == 4
        assert fitted["fp0"][key]["instructions"] == 100

    def test_tie_goes_to_smaller_lmul(self):
        fitted = fit_policy([
            point(lmul=8, instructions=100),
            point(lmul=2, instructions=100),
        ])
        key = entry_key(128, "paper", n_bucket(1000))
        assert fitted["fp0"][key]["lmul"] == 2

    def test_separate_buckets_and_fingerprints(self):
        fitted = fit_policy([
            point(fp="a", n=64, lmul=1, instructions=10),
            point(fp="a", n=3000, lmul=8, instructions=10),
            point(fp="b", n=64, lmul=4, instructions=10),
        ])
        assert set(fitted) == {"a", "b"}
        assert len(fitted["a"]) == 2
        assert fitted["a"][entry_key(128, "paper", 7)]["lmul"] == 1
        assert fitted["a"][entry_key(128, "paper", 12)]["lmul"] == 8


class TestChoose:
    def _policy(self, tmp_path, entries, fp="fp0"):
        db = TuningDB(tmp_path)
        db.save(fp, entries)
        return TunePolicy(db)

    def test_exact_bucket(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 10): {"lmul": 4, "instructions": 1, "n": 1000},
        })
        assert pol.choose("fp0", 1000, 128, "paper") is LMUL.M4

    def test_nearest_bucket_fallback(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 7): {"lmul": 1, "instructions": 1, "n": 64},
            entry_key(128, "paper", 14): {"lmul": 8, "instructions": 1, "n": 9000},
        })
        # bucket 9 -> distance 2 to 7, 5 to 14: picks the small-n entry
        assert pol.choose("fp0", 400, 128, "paper") is LMUL.M1
        # bucket 13 -> distance 1 to 14: picks the large-n entry
        assert pol.choose("fp0", 5000, 128, "paper") is LMUL.M8

    def test_nearest_tie_goes_downward(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 8): {"lmul": 1, "instructions": 1, "n": 200},
            entry_key(128, "paper", 12): {"lmul": 8, "instructions": 1, "n": 3000},
        })
        # bucket 10 is equidistant: the smaller (spill-safe) bucket wins
        assert pol.choose("fp0", 1000, 128, "paper") is LMUL.M1

    def test_vlen_and_codegen_matched_exactly(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 10): {"lmul": 4, "instructions": 1, "n": 1000},
        })
        assert pol.choose("fp0", 1000, 256, "paper") is None
        assert pol.choose("fp0", 1000, 128, "ideal") is None

    def test_unknown_fingerprint(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 10): {"lmul": 4, "instructions": 1, "n": 1000},
        })
        assert pol.choose("other", 1000, 128, "paper") is None

    def test_garbage_lmul_record_is_no_opinion(self, tmp_path):
        pol = self._policy(tmp_path, {
            entry_key(128, "paper", 10): {"lmul": "eight", "instructions": 1},
        })
        assert pol.choose("fp0", 1000, 128, "paper") is None

    def test_empty_policy_short_circuits(self, tmp_path):
        pol = TunePolicy.load(tmp_path / "never-swept")
        assert pol._empty
        assert pol.choose("fp0", 1000, 128, "paper") is None

    def test_memoized(self, tmp_path):
        db = TuningDB(tmp_path)
        db.save("fp0", {
            entry_key(128, "paper", 10): {"lmul": 4, "instructions": 1, "n": 1000},
        })
        pol = TunePolicy(db)
        assert pol.choose("fp0", 1000, 128, "paper") is LMUL.M4
        loads_after_first = db.hits + db.misses
        for _ in range(10):
            pol.choose("fp0", 1000, 128, "paper")
        assert db.hits + db.misses == loads_after_first  # no re-reads


class TestApply:
    def _plan_for(self, svm, n=1000, lmul=None):
        data = svm.array(np.arange(n, dtype=np.uint32))
        with svm.lazy() as lz:
            lz.p_add(data, 10, lmul=lmul)
            lz.plus_scan(data, lmul=lmul)
        return svm.engine.last_plan

    def _policy_choosing(self, tmp_path, svm, plan, lmul):
        db = TuningDB(tmp_path)
        db.save(plan.fingerprint(), {
            entry_key(svm.machine.vlen, svm.machine.codegen.name,
                      n_bucket(plan.max_n())):
                {"lmul": int(lmul), "instructions": 1, "n": plan.max_n()},
        })
        return TunePolicy(db)

    def test_apply_retags_default_plan(self, tmp_path):
        svm = SVM(vlen=128, codegen="paper", mode="fast")
        plan = self._plan_for(svm)
        pol = self._policy_choosing(tmp_path, svm, plan, LMUL.M8)
        assert pol.apply(plan, svm) is LMUL.M8
        from repro.engine.ir import Kind
        for nd in plan.nodes:
            if nd.kind not in (Kind.FREE, Kind.OPAQUE):
                assert nd.lmul is LMUL.M8

    def test_apply_stands_down_on_explicit_lmul(self, tmp_path):
        svm = SVM(vlen=128, codegen="paper", mode="fast")
        plan = self._plan_for(svm, lmul=LMUL.M2)   # hand-tuned pipeline
        pol = self._policy_choosing(tmp_path, svm, plan, LMUL.M8)
        assert pol.apply(plan, svm) is None
        assert all(nd.lmul is not LMUL.M8 for nd in plan.nodes)

    def test_apply_stands_down_when_choice_is_default(self, tmp_path):
        svm = SVM(vlen=128, codegen="paper", mode="fast")
        plan = self._plan_for(svm)
        pol = self._policy_choosing(tmp_path, svm, plan, svm.lmul)
        assert pol.apply(plan, svm) is None

    def test_apply_stands_down_when_empty(self, tmp_path):
        svm = SVM(vlen=128, codegen="paper", mode="fast")
        plan = self._plan_for(svm)
        assert TunePolicy.load(tmp_path / "nothing").apply(plan, svm) is None


class TestFingerprint:
    """Plan.fingerprint() must ignore exactly the tuning axes."""

    def _plan(self, *, vlen=128, lmul=None, n=500, codegen="paper"):
        svm = SVM(vlen=vlen, codegen=codegen, mode="fast")
        data = svm.array(np.arange(n, dtype=np.uint32))
        with svm.lazy() as lz:
            lz.p_add(data, 10, lmul=lmul)
            lz.plus_scan(data, lmul=lmul)
        return svm.engine.last_plan

    def test_invariant_to_tuning_axes(self):
        base = self._plan()
        assert self._plan(vlen=256).fingerprint() == base.fingerprint()
        assert self._plan(lmul=LMUL.M8).fingerprint() == base.fingerprint()
        assert self._plan(n=9999).fingerprint() == base.fingerprint()

    def test_sensitive_to_structure(self):
        base = self._plan()
        svm = SVM(vlen=128, codegen="paper", mode="fast")
        data = svm.array(np.arange(500, dtype=np.uint32))
        with svm.lazy() as lz:
            lz.p_mul(data, 10)          # different op chain
            lz.plus_scan(data)
        assert svm.engine.last_plan.fingerprint() != base.fingerprint()

    def test_max_n(self):
        assert self._plan(n=500).max_n() == 500

#!/usr/bin/env python
"""Compare a fresh benchmark run against a committed baseline JSON.

The BENCH_*.json files commit the simulator's dynamic-instruction
counts; those are deterministic, so any drift is a real behavior change
— the CI perf job regenerates BENCH_fusion.json and runs this with
``--tolerance 0`` to catch silent count regressions.

Usage::

    python tools/bench_compare.py BASELINE.json FRESH.json [--tolerance R]

Every numeric leaf of the baseline is compared to the same path in the
fresh file; relative drift above ``--tolerance`` (default 0, exact) and
missing paths both fail. Exit status is 0 when everything matches, 1 on
any regression, 2 on usage errors. Non-numeric leaves (strings like the
pipeline description) must match exactly.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["compare", "compare_files", "main"]


def _is_number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def compare(baseline, fresh, tolerance: float = 0.0, path: str = "$") -> list[str]:
    """Recursively diff ``fresh`` against ``baseline``; returns a list
    of human-readable failure strings (empty = match).

    ``tolerance`` is relative: a numeric leaf passes when
    ``|fresh - base| <= tolerance * max(|base|, 1)``.
    """
    failures: list[str] = []
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            return [f"{path}: expected object, got {type(fresh).__name__}"]
        for key, base_val in baseline.items():
            sub = f"{path}.{key}"
            if key not in fresh:
                failures.append(f"{sub}: missing from fresh run")
                continue
            failures.extend(compare(base_val, fresh[key], tolerance, sub))
    elif isinstance(baseline, list):
        if not isinstance(fresh, list):
            return [f"{path}: expected array, got {type(fresh).__name__}"]
        if len(fresh) != len(baseline):
            failures.append(
                f"{path}: length {len(fresh)} != baseline {len(baseline)}"
            )
        for i, base_val in enumerate(baseline[: len(fresh)]):
            failures.extend(compare(base_val, fresh[i], tolerance, f"{path}[{i}]"))
    elif _is_number(baseline):
        if not _is_number(fresh):
            failures.append(f"{path}: expected number, got {fresh!r}")
        else:
            limit = tolerance * max(abs(baseline), 1.0)
            drift = abs(fresh - baseline)
            if drift > limit:
                rel = drift / max(abs(baseline), 1.0)
                failures.append(
                    f"{path}: {fresh} vs baseline {baseline} "
                    f"(drift {rel:.4%} > tolerance {tolerance:.2%})"
                )
    else:
        if fresh != baseline:
            failures.append(f"{path}: {fresh!r} != baseline {baseline!r}")
    return failures


def compare_files(baseline_path: str, fresh_path: str,
                  tolerance: float = 0.0) -> list[str]:
    """Load both JSON files and :func:`compare` them."""
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    return compare(baseline, fresh, tolerance)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh benchmark JSON against a baseline"
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly generated JSON")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="allowed relative drift per numeric leaf "
                             "(default 0: exact)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be >= 0")

    failures = compare_files(args.baseline, args.fresh, args.tolerance)
    if failures:
        for line in failures:
            print(f"REGRESSION {line}", file=sys.stderr)
        print(f"{len(failures)} regression(s) vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"OK: {args.fresh} matches {args.baseline} "
          f"(tolerance {args.tolerance:.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI gate for the unified ExecConfig layer.

Fails (exit 1) when an execution-config environment read leaks outside
:mod:`repro.config`:

1. no module under ``src/repro/`` other than ``repro/config.py`` may
   touch ``os.environ`` / ``os.getenv`` / ``os.environ.get`` (AST
   check, so aliased imports like ``from os import environ`` or
   ``getenv = os.getenv`` fail too);
2. no module other than ``repro/config.py`` may mention a ``REPRO_*``
   environment variable in executable code — config is resolved in one
   place, everything else consumes :class:`repro.config.ExecConfig`
   or the call-time helpers it exports.

Run as ``PYTHONPATH=src python tools/check_config.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: The one module allowed to read the process environment.
ALLOWED = {Path("repro") / "config.py"}

#: Attribute/function names that read the environment.
ENV_READERS = {"environ", "getenv", "environb", "putenv"}


def fail(errors: list[str]) -> None:
    for e in errors:
        print(f"check_config: {e}", file=sys.stderr)
    if errors:
        sys.exit(1)


def _env_reads(tree: ast.AST) -> list[tuple[int, str]]:
    """(lineno, description) for every environment access in ``tree``."""
    hits: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in ENV_READERS:
            hits.append((node.lineno, f"attribute access .{node.attr}"))
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in ENV_READERS:
                    hits.append(
                        (node.lineno, f"from os import {alias.name}"))
        elif isinstance(node, ast.Name) and node.id in {"getenv", "environ"}:
            # Bare names only matter if they were imported from os — but
            # flag them anyway: a bare `environ` in repro code is either
            # an env read or shadowing that invites one.
            hits.append((node.lineno, f"bare name {node.id!r}"))
    return hits


def check_env_isolation() -> list[str]:
    errors = []
    for path in sorted(SRC.rglob("repro/**/*.py")):
        rel = path.relative_to(SRC)
        if rel in ALLOWED:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, what in _env_reads(tree):
            errors.append(
                f"{rel}:{lineno}: {what} — environment reads belong in "
                "repro/config.py only; consume ExecConfig or its "
                "call-time helpers instead"
            )
    return errors


def check_repro_var_literals() -> list[str]:
    """No module but config.py may hold an exact REPRO_* variable-name
    literal — the shape an env lookup by name would use. Help text and
    docstrings *embedding* the names in longer sentences are fine."""
    sys.path.insert(0, str(SRC))
    from repro.config import ENV_VARS

    names = set(ENV_VARS.values()) | {"REPRO_NATIVE_CC",
                                      "REPRO_NATIVE_DISABLE"}
    errors = []
    for path in sorted(SRC.rglob("repro/**/*.py")):
        rel = path.relative_to(SRC)
        if rel in ALLOWED:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value in names):
                errors.append(
                    f"{rel}:{node.lineno}: bare {node.value!r} literal "
                    "outside repro/config.py — looks like an env lookup "
                    "by name; route it through the ExecConfig layer"
                )
    return errors


def main() -> int:
    errors = check_env_isolation() + check_repro_var_literals()
    if errors:
        fail(errors)
    n = sum(1 for _ in SRC.rglob("repro/**/*.py"))
    print(f"check_config: OK — {n} modules scanned, environment reads "
          "confined to repro/config.py")
    return 0


if __name__ == "__main__":
    sys.exit(main())

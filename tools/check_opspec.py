#!/usr/bin/env python
"""CI gate for the unified OpSpec registry.

Fails (exit 1) when the "declared exactly once" invariant is violated:

1. every public SVM primitive must map to exactly one registered
   :class:`repro.svm.opspec.OpSpec` (by name or alias) — no primitive
   may bypass the registry;
2. every registered non-composite op must carry a strict kernel, a
   fast kernel (same variant keys), and a counter-charge profile that
   exists in ``repro.rvv.allocation.PROFILES``;
3. ``repro/svm/context.py`` must not import any kernel module — the
   registry is the only kernel supplier for the dispatch layer (AST
   check, so a sneaky ``from . import elementwise`` fails even if
   unused);
4. registry self-consistency: fusable ops need a lane recipe, ops with
   data-dependent charges must opt out of the 2D batch path AND pick
   an explicit batch escape hatch — a ragged recipe (``ragged2d``) or
   a ``loop_only`` justification sentence, never both — futures only
   on the ops that produce scalars;
5. native-tier coverage: every non-composite op with codegen metadata
   must either capture to node kinds the native backend can emit
   (``repro.engine.native.NATIVE_KINDS``) or declare ``native=False``
   explicitly — an op can never fall out of the compiled tier
   silently, and a stale ``native=False`` on a lowerable op fails too.

Run as ``PYTHONPATH=src python tools/check_opspec.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.rvv.allocation import PROFILES  # noqa: E402
from repro.svm import opspec  # noqa: E402
from repro.svm.context import SVM  # noqa: E402

#: Public SVM attributes that are infrastructure, not primitives.
NON_PRIMITIVE = {
    "array", "zeros", "empty", "free",          # array management
    "lazy", "batch", "engine",                  # lazy/batched execution
    "instructions", "counters", "profiler", "reset",  # counters
}

#: Kernel-supplying modules the dispatch layer must not import: the
#: registry is the only path from SVM methods to kernels. (split_op is
#: deliberately absent — it is a composition layer that calls back into
#: SVM primitives, not a kernel supplier.)
KERNEL_MODULES = {
    "elementwise", "fastpath",
    "scan", "segmented", "enumerate_op", "permute_ops",
}


def fail(errors: list[str]) -> None:
    for e in errors:
        print(f"check_opspec: {e}", file=sys.stderr)
    if errors:
        sys.exit(1)


def check_public_surface() -> list[str]:
    errors = []
    registered = set(opspec.OPSPECS) | set(opspec.ALIASES)
    for name in dir(SVM):
        if name.startswith("_") or name in NON_PRIMITIVE:
            continue
        if name not in registered:
            errors.append(
                f"public SVM primitive {name!r} bypasses the OpSpec registry"
            )
    for name in opspec.OPSPECS:
        if not hasattr(SVM, name):
            errors.append(f"registered op {name!r} has no SVM method")
    return errors


def check_specs() -> list[str]:
    errors = []
    for spec in opspec.iter_specs():
        if spec.composite:
            if spec.strict or spec.fast:
                errors.append(
                    f"composite {spec.name!r} must not carry kernels "
                    "(it lowers to other primitives)"
                )
            continue
        if not spec.strict:
            errors.append(f"op {spec.name!r} lacks a strict kernel")
        if not spec.fast:
            errors.append(f"op {spec.name!r} lacks a fast kernel")
        if set(spec.strict) != set(spec.fast):
            errors.append(
                f"op {spec.name!r}: strict variants {sorted(spec.strict)} "
                f"!= fast variants {sorted(spec.fast)}"
            )
        if not spec.profile:
            errors.append(f"op {spec.name!r} lacks a counter-charge profile")
        elif spec.profile not in PROFILES:
            errors.append(
                f"op {spec.name!r}: profile {spec.profile!r} not in "
                f"rvv.allocation.PROFILES {sorted(PROFILES)}"
            )
        if spec.fuse_role == "lane":
            for kind in spec.node_kinds.values():
                if kind not in opspec.LANE_RECIPES:
                    errors.append(
                        f"lane op {spec.name!r}: node kind {kind!r} has no "
                        "entry in LANE_RECIPES"
                    )
        if spec.data_dependent and spec.batch2d:
            errors.append(
                f"op {spec.name!r} has a data-dependent charge but claims "
                "the 2D batch path"
            )
        if spec.data_dependent and not spec.ragged2d and not spec.loop_only:
            errors.append(
                f"op {spec.name!r} has a data-dependent charge but declares "
                "neither a ragged recipe (ragged2d=True) nor a loop_only "
                "justification — every data-dependent op must pick its "
                "batch escape hatch explicitly"
            )
        if spec.ragged2d and spec.loop_only:
            errors.append(
                f"op {spec.name!r} declares both ragged2d and loop_only — "
                "the escape hatches are mutually exclusive"
            )
        if spec.ragged2d and not spec.data_dependent:
            errors.append(
                f"op {spec.name!r} declares ragged2d without a "
                "data-dependent charge — data-oblivious ops take the "
                "plain 2D path"
            )
    return errors


def check_native() -> list[str]:
    """Every non-composite op with codegen metadata must either lower
    into the native tier or carry an explicit ``native=False`` escape
    hatch — and the hatch must be honest (a lowerable op may not hide
    behind a stale ``native=False``)."""
    from repro.engine.native import NATIVE_KINDS

    emittable = {kind.value for kind in NATIVE_KINDS}
    errors = []
    for spec in opspec.iter_specs():
        if spec.composite or not spec.codegen:
            continue
        lowerable = (bool(spec.node_kinds)
                     and set(spec.node_kinds.values()) <= emittable)
        if spec.native and not lowerable:
            missing = sorted(set(spec.node_kinds.values()) - emittable)
            errors.append(
                f"op {spec.name!r} claims the native tier but captures to "
                f"node kind(s) {missing} the native backend cannot emit — "
                "add a native emitter or declare native=False explicitly"
            )
        if not spec.native and lowerable:
            errors.append(
                f"op {spec.name!r} declares native=False but every node "
                f"kind it captures to is native-emittable — drop the stale "
                "escape hatch"
            )
    return errors


def check_context_imports() -> list[str]:
    errors = []
    path = SRC / "repro" / "svm" / "context.py"
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            names = [f"{mod}.{a.name}" if mod else a.name for a in node.names]
            names.append(mod)
        for name in names:
            leaf = name.rsplit(".", 1)[-1]
            if leaf in KERNEL_MODULES:
                errors.append(
                    f"context.py imports kernel module {name!r} at line "
                    f"{node.lineno} — primitives must dispatch through the "
                    "registry"
                )
    return errors


def main() -> int:
    errors = (check_public_surface() + check_specs() + check_native()
              + check_context_imports())
    if errors:
        fail(errors)
    n = sum(1 for s in opspec.iter_specs())
    print(f"check_opspec: OK — {n} registered ops, public surface covered, "
          "native flags consistent, context.py imports no kernel modules")
    return 0


if __name__ == "__main__":
    sys.exit(main())

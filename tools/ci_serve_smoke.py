"""CI probe: drive the serving daemon end to end as a real subprocess.

Starts ``python -m repro serve`` on an ephemeral port, parses the
``REPRO_SERVE listening addr=...`` announce line, runs a mixed
workload (every default pipeline, mixed lengths, a strict-mode batch)
over one pipelined client connection, and asserts:

* every response is bit-identical to executing the same request
  sequentially through a direct :class:`repro.SVM` call (the serving
  identity invariant, checked over the wire this time) — pack
  pipelines (``filter``, ``radix_pack``) on their defined survivor
  prefix, cross-checked against a plain NumPy model, with the stats
  document proving their flushes took the ``"ragged"`` path;
* the ``stats`` request reports a sane document (requests all ok,
  at least one coalesced flush, nonzero instruction counters);
* always-on telemetry holds end to end: every execute response
  carries a unique trace ID with a timing breakdown and plan-cache
  outcome, the ``metrics`` request scrapes as *strictly valid*
  Prometheus text exposition (validated with
  :func:`repro.obs.exposition.parse_exposition`, which rejects rather
  than skips malformed lines), the ``dump`` request returns a flight
  recorder whose event chains match the response trace IDs, and
  SIGUSR1 makes the daemon write the same recorder as NDJSON to
  ``--flight-dump``;
* ``repro top --once`` renders a live frame against the daemon;
* a ``shutdown`` request drains the daemon, it exits 0, and the
  ``--stats-json`` file it leaves behind agrees with the wire stats.

    PYTHONPATH=src python tools/ci_serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.obs.exposition import parse_exposition
from repro.serve import ServeClient
from repro.serve.protocol import PIPELINES
from repro.svm import SVM

SEED = 513


def _radix_pack_model(d: np.ndarray) -> np.ndarray:
    """Plain NumPy model of the radix_pack pipeline: stable partition
    by bit 0 (zeros first), then keep values < 2^15."""
    part = np.concatenate([d[(d & 1) == 0], d[(d & 1) == 1]])
    return part[part < 2**15]


#: NumPy models of the pack pipelines' defined survivor prefixes —
#: responses carry only these lanes (plus a ``valid`` count).
PACK_MODELS = {
    "filter": lambda d: d[(d >= 2**14) & (d < 3 * 2**14)],
    "radix_pack": _radix_pack_model,
}


def build_workload() -> list[dict]:
    g = np.random.default_rng(SEED)
    reqs: list[dict] = []
    reqs += [{"pipeline": "chain_scan",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(6)]
    reqs += [{"pipeline": "elementwise",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(4)]
    reqs += [{"pipeline": "scan",
              "data": g.integers(0, 2**16, 900, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "reverse",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "filter",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "radix_pack",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "chain_scan", "mode": "strict",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(2)]
    return reqs


def sequential_reference(requests: list[dict]) -> list[np.ndarray]:
    svm = SVM(vlen=1024, codegen="paper")
    outs = []
    for r in requests:
        svm.mode = r.get("mode") or "auto"
        data = svm.array(np.asarray(r["data"], dtype=np.uint32))
        with svm.lazy() as lz:
            out = PIPELINES[r["pipeline"]](lz, data)
        outs.append(out.to_numpy())
        svm.free(out)
        if out is not data:
            svm.free(data)
    return outs


def check_exposition(text: str, n_requests: int) -> None:
    """Strictly parse a live scrape and spot-check the families the
    dashboard relies on."""
    doc = parse_exposition(text)  # raises ExpositionError on violation
    total = next(v for name, labels, v
                 in doc["repro_serve_requests_total"]["samples"]
                 if not labels)
    assert total == n_requests, (total, n_requests)
    by_pipeline: dict[str, float] = {}
    for _, labels, v in doc["repro_serve_pipeline_requests_total"]["samples"]:
        by_pipeline[labels["pipeline"]] = \
            by_pipeline.get(labels["pipeline"], 0) + v
    assert sum(by_pipeline.values()) == n_requests, by_pipeline
    assert "repro_serve_latency_ms" in doc
    assert "repro_serve_instructions" in doc
    assert "repro_serve_plan_cache_lookups" in doc
    print(f"metrics: strict exposition parse OK "
          f"({len(doc)} families, per-pipeline {by_pipeline})")


def check_flight_dump(dump: dict, traced: list[dict]) -> None:
    """The recorder must hold, for every traced response, an event
    chain admit -> coalesce -> flush -> complete whose flush lists the
    trace ID."""
    events = dump["events"]
    for resp in traced:
        trace = resp["trace"]
        chain = [e["kind"] for e in events
                 if e.get("trace") == trace
                 or trace in (e.get("traces") or ())]
        assert chain == ["admit", "coalesce", "flush", "complete"], (
            f"trace {trace}: bad chain {chain}")
    kinds = {e["kind"] for e in events}
    assert kinds <= {"admit", "coalesce", "flush", "complete", "cache",
                     "reject", "error"}, kinds
    assert dump["recorded"] >= len(events) > 0
    print(f"flight recorder: {len(events)} events retained, "
          f"{len(traced)} trace chains verified, "
          f"{len(dump['exemplars'])} slow exemplars")


def check_ndjson_dump(path: str) -> None:
    """The SIGUSR1 NDJSON file: a header line then one JSON doc per
    retained event/exemplar."""
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln]
    docs = [json.loads(ln) for ln in lines]
    assert docs[0]["kind"] == "flight_recorder", docs[0]
    assert docs[0]["recorded"] > 0
    assert all("kind" in d for d in docs[1:])
    print(f"SIGUSR1 dump: {len(docs)} NDJSON lines at {path}")


def run_top(host: str, port: int) -> None:
    """``repro top --once`` must render a frame against the live
    daemon."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "top", "--host", host,
         "--port", str(port), "--once"],
        capture_output=True, text=True, timeout=60)
    assert out.returncode == 0, out.stderr
    frame = out.stdout
    for needle in ("repro top", "requests", "coalescing", "plan cache",
                   "flight"):
        assert needle in frame, f"missing {needle!r} in top frame:\n{frame}"
    print("repro top: live frame rendered "
          f"({len(frame.splitlines())} lines)")


def main() -> int:
    tmpdir = tempfile.mkdtemp(prefix="repro-serve-")
    stats_path = os.path.join(tmpdir, "stats.json")
    flight_path = os.path.join(tmpdir, "flight.ndjson")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--flush-ms", "5", "--max-rows", "8",
         "--stats-json", stats_path, "--flight-dump", flight_path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stdout.readline()
        m = re.match(r"REPRO_SERVE listening addr=([\d.]+):(\d+)", announce)
        if not m:
            proc.kill()
            _, stderr = proc.communicate()
            print(f"FAIL: bad announce line {announce!r}\n{stderr}")
            return 1
        host, port = m.group(1), int(m.group(2))
        print(f"daemon up at {host}:{port}")

        requests = build_workload()
        with ServeClient(host=host, port=port) as client:
            assert client.ping(), "ping failed"
            served = client.execute_many(requests)

            # telemetry: traced responses, then the recorder they must
            # appear in
            g = np.random.default_rng(SEED + 1)
            traced = [
                client.execute_traced(
                    "scan", g.integers(0, 2**16, 700, dtype=np.uint32)
                    .tolist())
                for _ in range(3)
            ]
            assert len({r["trace"] for r in traced}) == 3, traced
            for resp in traced:
                assert resp["trace"].startswith("t"), resp
                t = resp["timing"]
                assert t["total_ms"] >= t["execute_ms"] >= 0, t
                assert resp["cache"] in ("memory", "disk", "compile",
                                         "none"), resp
            print(f"tracing: {len(traced)} traced responses with "
                  "timing breakdowns")

            # pack over the wire: the response is the defined survivor
            # prefix with its length in the ``valid`` field
            d = g.integers(0, 2**16, 2600, dtype=np.uint32)
            fresp = client.execute_traced("filter", d.tolist())
            fwant = PACK_MODELS["filter"](d)
            assert fresp["valid"] == len(fresp["result"]) == fwant.size, (
                fresp["valid"], fwant.size)
            assert np.array_equal(
                np.asarray(fresp["result"], dtype=np.uint32), fwant)
            print(f"pack wire semantics: valid={fresp['valid']} survivor "
                  f"lanes of n=2600 on the {fresp['path']!r} path")
            extra = len(traced) + 1

            check_exposition(client.metrics(), len(requests) + extra)
            check_flight_dump(client.dump(), traced)
            run_top(host, port)

            # SIGUSR1 → NDJSON dump to --flight-dump, daemon untouched
            if hasattr(signal, "SIGUSR1"):
                os.kill(proc.pid, signal.SIGUSR1)
                deadline = time.monotonic() + 30
                while (not os.path.exists(flight_path)
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                check_ndjson_dump(flight_path)
                assert client.ping(), "daemon died on SIGUSR1"

            wire_stats = client.stats()
            assert client.shutdown(), "shutdown not acknowledged"

        failures = [r for r in served if not isinstance(r, np.ndarray)]
        assert not failures, f"request failures: {failures}"

        reference = sequential_reference(requests)
        for i, (got, want) in enumerate(zip(served, reference)):
            pipe = requests[i]["pipeline"]
            if pipe in PACK_MODELS:
                model = PACK_MODELS[pipe](
                    np.asarray(requests[i]["data"], dtype=np.uint32))
                assert np.array_equal(got, model), (
                    f"request {i} ({pipe}) diverged from the NumPy model")
                assert np.array_equal(got, want[:got.size]), (
                    f"request {i} ({pipe}) diverged from the sequential "
                    "reference prefix")
            else:
                assert np.array_equal(got, want), (
                    f"request {i} ({pipe}) diverged from the sequential "
                    "reference")
        print(f"identity: {len(served)} served results bit-identical "
              "to sequential SVM calls (pack pipelines on their "
              "survivor prefixes)")

        total_reqs = len(requests) + extra
        req = wire_stats["requests"]
        co = wire_stats["coalescing"]
        assert req["ok"] == total_reqs, req
        assert req["errors"] == 0 and req["rejected"] == 0, req
        assert co["flushes"] >= 1 and co["rows"] == total_reqs, co
        assert co["ratio"] > 1.0, f"no coalescing happened: {co}"
        assert wire_stats["instructions"] > 0
        sources = wire_stats["plan_cache"]["sources"]
        assert sources["compile"] >= 1 and sources["memory"] >= 1, sources
        # the coalesced filter and radix_pack flushes must have taken
        # the masked ragged path, not the per-row loop fallback
        assert co["paths"]["ragged"] >= 2, co["paths"]
        print(f"stats: {co['rows']} rows in {co['flushes']} flushes "
              f"(ratio {co['ratio']}), paths {co['paths']}")

        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"daemon exit {proc.returncode}\n{stderr}"
        assert "served" in stdout, stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    with open(stats_path) as f:
        final_stats = json.load(f)
    assert final_stats["requests"]["ok"] == total_reqs, final_stats
    assert final_stats["counters"] == wire_stats["counters"], (
        "stats-json counters drifted from the wire stats")
    print("serve smoke: OK "
          f"(final stats written to {stats_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

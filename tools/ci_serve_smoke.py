"""CI probe: drive the serving daemon end to end as a real subprocess.

Starts ``python -m repro serve`` on an ephemeral port, parses the
``REPRO_SERVE listening addr=...`` announce line, runs a mixed
workload (every default pipeline, mixed lengths, a strict-mode batch)
over one pipelined client connection, and asserts:

* every response is bit-identical to executing the same request
  sequentially through a direct :class:`repro.SVM` call (the serving
  identity invariant, checked over the wire this time);
* the ``stats`` request reports a sane document (requests all ok,
  at least one coalesced flush, nonzero instruction counters);
* a ``shutdown`` request drains the daemon, it exits 0, and the
  ``--stats-json`` file it leaves behind agrees with the wire stats.

    PYTHONPATH=src python tools/ci_serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

import numpy as np

from repro.serve import ServeClient
from repro.serve.protocol import PIPELINES
from repro.svm import SVM

SEED = 513


def build_workload() -> list[dict]:
    g = np.random.default_rng(SEED)
    reqs: list[dict] = []
    reqs += [{"pipeline": "chain_scan",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(6)]
    reqs += [{"pipeline": "elementwise",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(4)]
    reqs += [{"pipeline": "scan",
              "data": g.integers(0, 2**16, 900, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "reverse",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "filter",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(3)]
    reqs += [{"pipeline": "chain_scan", "mode": "strict",
              "data": g.integers(0, 2**16, 2600, dtype=np.uint32).tolist()}
             for _ in range(2)]
    return reqs


def sequential_reference(requests: list[dict]) -> list[np.ndarray]:
    svm = SVM(vlen=1024, codegen="paper")
    outs = []
    for r in requests:
        svm.mode = r.get("mode") or "auto"
        data = svm.array(np.asarray(r["data"], dtype=np.uint32))
        with svm.lazy() as lz:
            out = PIPELINES[r["pipeline"]](lz, data)
        outs.append(out.to_numpy())
        svm.free(out)
        if out is not data:
            svm.free(data)
    return outs


def main() -> int:
    stats_path = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"),
                              "stats.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--flush-ms", "5", "--max-rows", "8",
         "--stats-json", stats_path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stdout.readline()
        m = re.match(r"REPRO_SERVE listening addr=([\d.]+):(\d+)", announce)
        if not m:
            proc.kill()
            _, stderr = proc.communicate()
            print(f"FAIL: bad announce line {announce!r}\n{stderr}")
            return 1
        host, port = m.group(1), int(m.group(2))
        print(f"daemon up at {host}:{port}")

        requests = build_workload()
        with ServeClient(host=host, port=port) as client:
            assert client.ping(), "ping failed"
            served = client.execute_many(requests)
            wire_stats = client.stats()
            assert client.shutdown(), "shutdown not acknowledged"

        failures = [r for r in served if not isinstance(r, np.ndarray)]
        assert not failures, f"request failures: {failures}"

        reference = sequential_reference(requests)
        for i, (got, want) in enumerate(zip(served, reference)):
            assert np.array_equal(got, want), (
                f"request {i} ({requests[i]['pipeline']}) diverged from "
                f"the sequential reference")
        print(f"identity: {len(served)} served results bit-identical "
              "to sequential SVM calls")

        req = wire_stats["requests"]
        co = wire_stats["coalescing"]
        assert req["ok"] == len(requests), req
        assert req["errors"] == 0 and req["rejected"] == 0, req
        assert co["flushes"] >= 1 and co["rows"] == len(requests), co
        assert co["ratio"] > 1.0, f"no coalescing happened: {co}"
        assert wire_stats["instructions"] > 0
        print(f"stats: {co['rows']} rows in {co['flushes']} flushes "
              f"(ratio {co['ratio']}), paths {co['paths']}")

        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"daemon exit {proc.returncode}\n{stderr}"
        assert "served" in stdout, stdout
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    with open(stats_path) as f:
        final_stats = json.load(f)
    assert final_stats["requests"]["ok"] == len(requests), final_stats
    assert final_stats["counters"] == wire_stats["counters"], (
        "stats-json counters drifted from the wire stats")
    print("serve smoke: OK "
          f"(final stats written to {stats_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI probe: the tune lifecycle end to end — cold sweep, warm policy hit.

Cold phase (a real subprocess, exactly what a user types):
``python -m repro tune sweep --dir <tmp>`` over a small grid, then
``repro tune show`` against the same directory must render the fitted
policy table.

Warm phase (in-process): a fresh ``SVM(tune="auto", cache_dir=<tmp>)``
dispatching a shape the sweep covered must

* actually consult the policy (the plan's nodes carry a non-default
  LMUL picked from the swept grid),
* stay bit- and counter-identical to an SVM pinned to that LMUL
  (tuned dispatch is pure config selection),
* beat the untuned default's dynamic instruction count at large n,
* and resolve the policy exactly once (memoized — no per-request DB
  reads on the warm path).

    PYTHONPATH=src python tools/ci_tune_smoke.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro import SVM  # noqa: E402
from repro.rvv.types import LMUL  # noqa: E402

VLEN = 128
N = 3000


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=600,
        cwd=str(SRC.parent), env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"repro {' '.join(argv)} exited {proc.returncode}")
    return proc


def drive(svm) -> np.ndarray:
    data = svm.array(np.arange(1, N + 1, dtype=np.uint32))
    with svm.lazy() as lz:
        lz.p_add(data, 10)
        lz.p_mul(data, 3)
        lz.p_xor(data, 255)
        lz.plus_scan(data)
    return data.to_numpy()


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="repro-tune-smoke-")

    # ---- cold: sweep through the CLI ---------------------------------
    out = run_cli("tune", "sweep", "--dir", tmp,
                  "--pipelines", "chain_scan",
                  "--sizes", "64", str(N), "--vlen", str(VLEN),
                  "--jobs", "1").stdout
    assert "swept" in out and "policy entr" in out, out
    assert "tuning DB written under" in out, out

    show = run_cli("tune", "show", "--dir", tmp).stdout
    assert "fitted shape→config policy" in show, show
    assert "chain_scan" in show, show

    # ---- warm: a fresh consumer hits the persisted policy ------------
    tuned = SVM(vlen=VLEN, codegen="paper", mode="fast",
                tune="auto", cache_dir=tmp)
    out_tuned = drive(tuned)
    applied = tuned.engine.last_plan.nodes[0].lmul
    assert applied != LMUL.M1, (
        f"policy hit expected at n={N}, plan still at default {applied!r}")

    tuned_instr = tuned.instructions
    pinned = SVM(vlen=VLEN, codegen="paper", mode="fast", lmul=applied)
    out_pinned = drive(pinned)
    assert np.array_equal(out_tuned, out_pinned), "tuned result diverged"
    assert tuned_instr == pinned.instructions
    assert (tuned.counters.snapshot().by_category
            == pinned.counters.snapshot().by_category), "counters diverged"

    default = SVM(vlen=VLEN, codegen="paper", mode="fast")
    drive(default)
    assert tuned_instr < default.instructions, (
        f"tuned {tuned_instr} not below default {default.instructions}")

    # memoized: further dispatches do not re-read the DB
    policy = tuned._tune_policy
    reads = policy.db.hits + policy.db.misses
    for _ in range(3):
        drive(tuned)
    assert tuned._tune_policy is policy
    assert policy.db.hits + policy.db.misses == reads, "warm path re-read DB"

    speedup = default.instructions / tuned_instr
    print(f"ci_tune_smoke: OK — cold sweep persisted, warm policy hit "
          f"chose LMUL={int(applied)} at n={N} (identity holds, "
          f"{speedup:.2f}x vs default, zero warm DB reads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

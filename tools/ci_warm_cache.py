"""CI probe: prove the persistent plan cache warms across processes.

Run with ``REPRO_CACHE_DIR`` set. Phase ``cold`` executes a pipeline
(the compiled plan is persisted as a side effect) and saves the result
bits; phase ``warm`` re-runs the identical pipeline in a *fresh
process* and asserts (a) the output is bit-identical, (b) the plan was
served from the on-disk store, and (c) no capture-analysis /
fuse / specialize / codegen work happened — no ``plan.compile`` span
and no ``codegen.compile`` event in the profile.

    REPRO_CACHE_DIR=/tmp/cache python tools/ci_warm_cache.py cold --ref /tmp/ref.npy
    REPRO_CACHE_DIR=/tmp/cache python tools/ci_warm_cache.py warm --ref /tmp/ref.npy
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import SVM
from repro.rvv.types import LMUL

N = 5000


def _pipeline(profile: bool, backend: str = "codegen"):
    svm = SVM(vlen=512, codegen="paper", mode="fast", backend=backend,
              profile=profile)
    data = svm.array(np.arange(N, dtype=np.uint32))
    with svm.lazy() as lz:
        lz.p_add(data, 10, lmul=LMUL.M2)
        lz.p_mul(data, 3, lmul=LMUL.M2)
        lz.plus_scan(data, lmul=LMUL.M2)
    return data.to_numpy(), svm


def _span_names(span, out):
    out.add(span["name"])
    for child in span.get("children", ()):
        _span_names(child, out)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("phase", choices=["cold", "warm"])
    parser.add_argument("--ref", required=True,
                        help="path of the .npy reference written by cold")
    parser.add_argument("--backend", default="codegen",
                        choices=["interp", "codegen", "native",
                                 "native-speed"],
                        help="execution backend; 'native' additionally "
                             "proves the compiled C artifacts persist "
                             "next to the plan entries")
    args = parser.parse_args()

    if not os.environ.get("REPRO_CACHE_DIR"):
        print("error: REPRO_CACHE_DIR must be set", file=sys.stderr)
        return 2

    native = args.backend in ("native", "native-speed")

    if args.phase == "cold":
        out, svm = _pipeline(profile=False, backend=args.backend)
        store = svm.engine.store
        assert store is not None, "persistent store not configured"
        entries = store.entries()
        assert len(entries) == 1, f"expected 1 store entry, got {len(entries)}"
        if native:
            from repro.engine.native import native_available

            assert native_available(), "native CI job found no C toolchain"
            arts = store.native_artifacts()
            kinds = sorted(p.suffix for p in arts)
            assert kinds == [".c", ".so"], (
                f"expected one .c/.so artifact pair, got {arts}")
        np.save(args.ref, out)
        print(f"cold: persisted 1 compiled plan "
              f"({entries[0].stat().st_size} bytes), ref -> {args.ref}")
        return 0

    ref = np.load(args.ref)
    out, svm = _pipeline(profile=True, backend=args.backend)
    assert np.array_equal(out, ref), "warm run is not bit-identical"

    store = svm.engine.store
    assert store.hits == 1 and store.misses == 0, (
        f"expected a pure disk hit, got hits={store.hits} "
        f"misses={store.misses}")

    collector = svm.profiler
    collector.finish()
    doc = collector.to_json()
    names = _span_names(doc["profile"], set())
    assert "plan.compile" not in names, "warm run compiled anyway"
    assert not any(e["name"] == "codegen.compile" for e in doc["events"]), (
        "warm run ran codegen anyway")
    assert doc["metrics"].get("engine.plan_cache.disk_hits") == 1
    if native:
        # the lowered C source rode inside the persisted envelope: the
        # disk-served plan carries a ready NativePlan, not a re-lower
        from repro.engine.native import NativePlan

        assert isinstance(svm.engine.last_fused.native, NativePlan), (
            "disk-served plan lost its native lowering")
    print("warm: bit-identical, served from disk, no compile work")
    return 0


if __name__ == "__main__":
    sys.exit(main())

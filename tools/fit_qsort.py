"""Fit QsortCosts to Table 1's baseline column.

Runs the instrumented libc-style quicksort on uniform random uint32
data at each paper N and fits per-operation dynamic-instruction costs
to the paper's counts with *physically-bounded* least squares
(relative-error weighting): a comparator invocation through a function
pointer costs 15-30 instructions, a swap 4-15, a partition call 20-120,
an insertion-sort move 2-10, per-element overhead 0-10. The bounds
keep the 5-point fit from degenerating into an unphysical interpolation.
"""
import numpy as np
from scipy.optimize import lsq_linear
from repro.scalar.qsort import instrumented_qsort

PAPER = {100: 17158, 10**3: 277480, 10**4: 3470344, 10**5: 43004753, 10**6: 511107188}

rows, y = [], []
for n, ref in PAPER.items():
    rng = np.random.default_rng(42)
    data = rng.integers(0, 2**32, n, dtype=np.uint32)
    out, st = instrumented_qsort(data)
    assert np.array_equal(out, np.sort(data))
    rows.append([st.comparisons, st.swaps, st.partitions, st.insertion_moves, st.n, 1.0])
    y.append(ref)

A = np.array(rows, float); b = np.array(y, float)
w = 1.0 / b
lo = [15, 4, 20, 2, 0, 50]
hi = [30, 15, 120, 10, 10, 500]
res = lsq_linear(A * w[:, None], b * w, bounds=(lo, hi))
coef = res.x
names = ["per_comparison", "per_swap", "per_partition", "per_insertion_move", "per_element", "base"]
for nm, c in zip(names, coef):
    print(f"    {nm}={c:.4f},")
pred = A @ coef
for (n, ref), p in zip(PAPER.items(), pred):
    print(f"N={n:>8} paper={ref:>11} fit={p:>13.0f} err={100*(p-ref)/ref:+.2f}%")

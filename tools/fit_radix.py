"""Verify (and re-derive) the malloc cost model against Table 1.

The paper's split radix sort per-element cost jumps from ~80 at N=1e4
to ~196 at N>=1e5 (Table 1). The hypothesis encoded in
repro/scalar/malloc_model.py: each split pass mallocs two 4N-byte
buffers; past glibc's 128 KiB threshold those become mmap/munmap pairs
whose fresh pages fault through counted proxy-kernel code.

This script (a) solves for the per-page cost implied by Table 1's
excess, and (b) re-measures the full Table 1 column with the current
model so the fit can be checked after any change.

Run:  python tools/fit_radix.py
"""

import numpy as np

from repro import SVM
from repro.algorithms import split_radix_sort
from repro.scalar.malloc_model import MMAP_THRESHOLD, PAGE_SIZE, GlibcMallocModel

PAPER_RADIX = {100: 23988, 10**3: 94842, 10**4: 803690,
               10**5: 19603490, 10**6: 195102988}

# --- (a) implied per-page cost -------------------------------------------------
# excess per element between the small-N regime (no mmap) and large-N
small_per_elem = PAPER_RADIX[10**4] / 10**4      # ~80.4, bins only
for n in (10**5, 10**6):
    excess_total = PAPER_RADIX[n] - small_per_elem * n
    pages_per_alloc = -(-4 * n // PAGE_SIZE)
    # 32 bit passes x 2 large allocations each (i_up, i_down)
    n_allocs = 32 * 2
    implied_per_page = excess_total / (n_allocs * pages_per_alloc)
    print(f"N={n:>8}: Table 1 excess {excess_total:>13,.0f} over "
          f"{n_allocs} allocs x {pages_per_alloc} pages "
          f"-> {implied_per_page:.0f} instr/page")
print(f"model uses per_page={GlibcMallocModel().per_page} "
      f"(threshold {MMAP_THRESHOLD // 1024} KiB)")

# --- (b) full-column check with the current model ---------------------------------
print()
for n, ref in PAPER_RADIX.items():
    svm = SVM(vlen=1024, codegen="paper", mode="fast",
              malloc_model=GlibcMallocModel())
    data = np.random.default_rng(7).integers(0, 2**32, n, dtype=np.uint32)
    arr = svm.array(data)
    svm.reset()
    split_radix_sort(svm, arr)
    assert np.array_equal(arr.to_numpy(), np.sort(data))
    c = svm.instructions
    print(f"N={n:>8}: measured {c:>13,} paper {ref:>13,} "
          f"err {100 * (c - ref) / ref:+.1f}%")
